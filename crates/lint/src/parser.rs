//! Token-tree parsing: an AST-lite view of one file.
//!
//! The semantic rules need more than a token stream — they need to know
//! which names are `HashMap`-typed, which functions return `Result`, where
//! item bodies start and end — but pulling in `syn` is off the table
//! (vendored-shims policy). This module is the middle ground: a forgiving,
//! dependency-free structural pass over the [`crate::lexer`] output that
//! recovers items (with attributes, visibility, and derive lists), fn
//! signatures, `use` imports with aliases, `let` bindings, and a
//! delimiter-matching table for jumping across `()`/`[]`/`{}` groups.
//!
//! "Forgiving" is load-bearing: on code this parser does not understand it
//! skips tokens rather than erroring, because the linter must degrade to
//! fewer findings — never to a crash — on any file `rustc` accepts.

use crate::lexer::{Token, TokenKind};

/// The head of a type expression, e.g. `&mut HashMap<NodeId, f64>` has
/// head `HashMap` and args `["NodeId", "f64"]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeHead {
    /// Last path segment of the type constructor (`Result` for
    /// `io::Result<()>`), with references/`mut`/`dyn`/`impl` stripped.
    pub head: String,
    /// Every identifier inside the generic argument list, flattened —
    /// enough to ask "does this type carry an `f64` anywhere".
    pub args: Vec<String>,
}

impl TypeHead {
    /// True if the head or any generic argument is this identifier.
    pub fn mentions(&self, name: &str) -> bool {
        self.head == name || self.args.iter().any(|a| a == name)
    }
}

/// What kind of item a declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function or method).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `impl` block.
    Impl,
    /// `trait` definition.
    Trait,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
}

/// Where an item is nested — rules treat trait-impl methods differently
/// from inherent ones (e.g. `#[must_use]` belongs on the trait, not the
/// impl).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Container {
    /// File or inline-module scope.
    TopLevel,
    /// Inside `impl Type { .. }`.
    InherentImpl,
    /// Inside `impl Trait for Type { .. }`.
    TraitImpl,
    /// Inside `trait { .. }`.
    Trait,
}

/// A parsed fn signature.
#[derive(Debug, Clone, Default)]
pub struct FnSig {
    /// `(name, type head)` per typed parameter; `self` receivers and
    /// pattern parameters are skipped.
    pub params: Vec<(String, TypeHead)>,
    /// The return type head, if an `->` was present.
    pub ret: Option<TypeHead>,
}

/// One item declaration.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name (`impl` blocks use the implemented type's head;
    /// unnamed/unparsed items get `""`).
    pub name: String,
    /// True for `pub` / `pub(crate)` items.
    pub is_pub: bool,
    /// Token index of the defining keyword (`fn`, `struct`, ...).
    pub kw: usize,
    /// Token indices of the body's `{` and `}`, if the item has a body.
    pub body: Option<(usize, usize)>,
    /// Token index of the item's last token (`}` or `;`).
    pub end: usize,
    /// Idents listed in a leading `#[derive(...)]`.
    pub derives: Vec<String>,
    /// True if a leading attribute mentions `must_use`.
    pub has_must_use: bool,
    /// Parsed signature, for `Fn` items.
    pub sig: Option<FnSig>,
    /// `(name, type head)` per named struct field, for `Struct` items.
    pub fields: Vec<(String, TypeHead)>,
    /// True for `static mut` items.
    pub is_static_mut: bool,
    /// Enclosing container of this item.
    pub container: Container,
}

/// One imported name: `use std::collections::HashMap as Map` yields
/// `local = "Map"`, `path = "std::collections::HashMap"`.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// The name the import binds in this file.
    pub local: String,
    /// The full `::`-joined source path.
    pub path: String,
}

/// A `let` binding recovered from a body region.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound name (pattern bindings like `let (a, b) = ..` are skipped).
    pub name: String,
    /// Type from an explicit `: Type` annotation.
    pub ty: Option<TypeHead>,
    /// Head of the initializer path for `= Head::new()` / `= Head { .. }`
    /// style initializers — a cheap type inference for constructor calls.
    pub init_head: Option<String>,
    /// Token index of the bound name.
    pub idx: usize,
}

/// The structural view of one lexed file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// `match_of[i]` is the index of the delimiter paired with token `i`
    /// (for `(`/`[`/`{` and their closers), or `None` for non-delimiters
    /// and unbalanced ones.
    pub match_of: Vec<Option<usize>>,
    /// All items, outer-to-inner (module/impl members follow their
    /// container).
    pub items: Vec<Item>,
    /// All `use` imports.
    pub uses: Vec<UseImport>,
}

impl ParsedFile {
    /// True if the file imports `name` from a path ending in `target`
    /// (e.g. is `Map` an alias of `HashMap`), or `name == target`.
    pub fn resolves_to(&self, name: &str, target: &str) -> bool {
        if name == target {
            return true;
        }
        self.uses.iter().any(|u| {
            u.local == name && u.path.rsplit("::").next().is_some_and(|last| last == target)
        })
    }
}

/// Pairs up `()`, `[]`, and `{}` delimiters.
pub fn match_delims(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack: Vec<(usize, &str)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push((i, t.text.as_str())),
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                // Pop only a matching opener; a mismatched closer (broken
                // code) is left unpaired rather than corrupting the stack.
                if stack.last().is_some_and(|&(_, open)| open == want) {
                    if let Some((j, _)) = stack.pop() {
                        out[i] = Some(j);
                        out[j] = Some(i);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses the token stream of one file.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let match_of = match_delims(tokens);
    let mut parsed = ParsedFile { match_of, items: Vec::new(), uses: Vec::new() };
    let (items, uses) = {
        let mut items = Vec::new();
        let mut uses = Vec::new();
        parse_items(
            tokens,
            &parsed.match_of,
            0,
            tokens.len(),
            Container::TopLevel,
            &mut items,
            &mut uses,
        );
        (items, uses)
    };
    parsed.items = items;
    parsed.uses = uses;
    parsed
}

/// Skips a generic-argument list; `i` points at the opening `<`. Returns
/// the index just past the matching close. `<<`/`>>` count double because
/// the lexer munches them as single tokens.
fn skip_angles(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "<" if tokens[i].kind == TokenKind::Punct => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            // A `;` or `{` at any point means this was not a generic list
            // after all (e.g. a comparison) — bail out where we stand.
            ";" | "{" => return i,
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    i
}

/// Extracts the [`TypeHead`] from a type-position token range.
pub fn type_head(tokens: &[Token], lo: usize, hi: usize) -> Option<TypeHead> {
    let mut i = lo;
    // Strip reference/pointer/mutability/existential prefixes.
    while i < hi {
        let t = &tokens[i];
        let skip = t.is_punct("&")
            || t.is_punct("&&")
            || t.is_punct("*")
            || t.is_ident("mut")
            || t.is_ident("const")
            || t.is_ident("dyn")
            || t.is_ident("impl")
            || t.kind == TokenKind::Lifetime;
        if !skip {
            break;
        }
        i += 1;
    }
    if i >= hi {
        return None;
    }
    if tokens[i].is_punct("(") || tokens[i].is_punct("[") {
        // Tuple or slice type: the delimiter is the head, the idents
        // inside are the args.
        let head = tokens[i].text.clone();
        let mut args = Vec::new();
        let mut j = i + 1;
        let mut depth = 1i32;
        while j < hi && depth > 0 {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.kind == TokenKind::Ident {
                args.push(t.text.clone());
            }
            j += 1;
        }
        return Some(TypeHead { head, args });
    }
    // Path: `a::b::Last<Args>` — walk segments, keep the last one.
    let mut head = None;
    while i < hi {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            head = Some(t.text.clone());
            i += 1;
        } else if t.is_punct("::") {
            i += 1;
        } else {
            break;
        }
    }
    let head = head?;
    let mut args = Vec::new();
    if i < hi && tokens[i].is_punct("<") {
        let close = skip_angles(tokens, i);
        for t in &tokens[i + 1..close.min(hi)] {
            if t.kind == TokenKind::Ident {
                args.push(t.text.clone());
            }
        }
    }
    Some(TypeHead { head, args })
}

/// Scans `[lo, hi)` for the first depth-0 occurrence of any `stops` punct
/// or ident; returns its index (or `hi`). Depth counts `()`, `[]`, `{}`.
fn scan_depth0(tokens: &[Token], lo: usize, hi: usize, stops: &[&str]) -> usize {
    let mut depth = 0i32;
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        // A stop wins over depth bookkeeping: `{` can be both an opener
        // and the boundary being searched for.
        if depth == 0 && stops.contains(&t.text.as_str()) {
            return i;
        }
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    hi
}

/// Recovers `let` bindings in a token range (typically a fn body).
pub fn let_bindings(tokens: &[Token], lo: usize, hi: usize) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi.min(tokens.len()) {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < hi && tokens[j].is_ident("mut") {
            j += 1;
        }
        if j >= hi || tokens[j].kind != TokenKind::Ident {
            i = j;
            continue;
        }
        let name = tokens[j].text.clone();
        let idx = j;
        let mut ty = None;
        let mut init_head = None;
        let mut k = j + 1;
        if k < hi && tokens[k].is_punct(":") {
            let stop = scan_depth0(tokens, k + 1, hi, &["=", ";"]);
            ty = type_head(tokens, k + 1, stop);
            k = stop;
        }
        if k < hi && tokens[k].is_punct("=") && tokens.get(k + 1).is_some_and(|t| {
            t.kind == TokenKind::Ident
        }) {
            // `= Head::new(..)` / `= Head { .. }` / `= Head::default()`:
            // take the first path segment as a constructor-type hint.
            init_head = Some(tokens[k + 1].text.clone());
        }
        out.push(Binding { name, ty, init_head, idx });
        i = k + 1;
    }
    out
}

/// Parses `(name, TypeHead)` pairs from a fn parameter list range
/// (exclusive of the parens).
fn parse_params(tokens: &[Token], lo: usize, hi: usize) -> Vec<(String, TypeHead)> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let colon = scan_depth0(tokens, i, hi, &[":"]);
        let comma = scan_depth0(tokens, i, hi, &[","]);
        if colon >= comma {
            // Untyped parameter (`self`, `&mut self`, a pattern) — skip.
            i = comma + 1;
            continue;
        }
        // The name is the last ident before the colon (handles `mut name`).
        let name = tokens[i..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
            .map(|t| t.text.clone());
        // The type runs to the next depth-0 comma *beyond* the colon; a
        // comma inside `HashMap<K, V>` sits inside `<..>`, which
        // `scan_depth0` does not track, so re-scan skipping angle groups.
        let mut end = colon + 1;
        let mut depth = 0i32;
        while end < hi {
            let t = &tokens[end];
            match t.text.as_str() {
                "(" | "[" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
                "<" if t.kind == TokenKind::Punct => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "," if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if let (Some(name), Some(ty)) = (name, type_head(tokens, colon + 1, end)) {
            out.push((name, ty));
        }
        i = end + 1;
    }
    out
}

/// Parses named struct fields from a struct body range (exclusive of the
/// braces).
fn parse_fields(tokens: &[Token], lo: usize, hi: usize) -> Vec<(String, TypeHead)> {
    // Field grammar is close enough to params that the same splitter works
    // (attributes and `pub` are skipped by the name-before-colon rule
    // because `]`/`pub` are not the last ident before `:` — but an
    // attribute *argument* could be, so strip attrs first).
    let mut cleaned: Vec<Token> = Vec::new();
    let mut i = lo;
    while i < hi.min(tokens.len()) {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let mut depth = 0i32;
            i += 1;
            while i < hi {
                if tokens[i].is_punct("[") {
                    depth += 1;
                } else if tokens[i].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        cleaned.push(tokens[i].clone());
        i += 1;
    }
    parse_params(&cleaned, 0, cleaned.len())
}

/// One leading attribute group's contribution to the next item.
#[derive(Default)]
struct Pending {
    derives: Vec<String>,
    has_must_use: bool,
    is_pub: bool,
}

/// Parses the items in `[lo, hi)`, recursing into `mod`/`impl`/`trait`
/// bodies (but not into fn bodies — nested fn items are rare and never
/// public API).
fn parse_items(
    tokens: &[Token],
    match_of: &[Option<usize>],
    lo: usize,
    hi: usize,
    container: Container,
    items: &mut Vec<Item>,
    uses: &mut Vec<UseImport>,
) {
    let mut i = lo;
    let mut pending = Pending::default();
    while i < hi.min(tokens.len()) {
        let t = &tokens[i];
        // Inner attribute `#![..]`: skip without touching pending state.
        if t.is_punct("#")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct("["))
        {
            i = match_of.get(i + 2).copied().flatten().map_or(i + 3, |c| c + 1);
            continue;
        }
        // Outer attribute `#[..]`: harvest derives / must_use.
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let close = match_of.get(i + 1).copied().flatten().unwrap_or(hi.saturating_sub(1));
            let inner = &tokens[i + 2..close.min(hi)];
            if inner.first().is_some_and(|f| f.is_ident("derive")) {
                for tok in inner.iter().skip(1) {
                    if tok.kind == TokenKind::Ident {
                        pending.derives.push(tok.text.clone());
                    }
                }
            }
            if inner.iter().any(|tok| tok.is_ident("must_use")) {
                pending.has_must_use = true;
            }
            i = close + 1;
            continue;
        }
        if t.is_ident("pub") {
            pending.is_pub = true;
            i += 1;
            // `pub(crate)` / `pub(in ..)` restriction group.
            if tokens.get(i).is_some_and(|n| n.is_punct("(")) {
                i = match_of.get(i).copied().flatten().map_or(i + 1, |c| c + 1);
            }
            continue;
        }
        // Transparent fn/impl qualifiers.
        if t.is_ident("unsafe") || t.is_ident("async") {
            i += 1;
            continue;
        }
        if t.is_ident("extern") {
            i += 1;
            if tokens.get(i).is_some_and(|n| n.kind == TokenKind::Str) {
                i += 1;
            }
            continue;
        }
        // `const fn` is a fn; bare `const` is a const item.
        let kw = if t.is_ident("const") && tokens.get(i + 1).is_some_and(|n| n.is_ident("fn")) {
            i += 1;
            "fn"
        } else {
            t.text.as_str()
        };
        let is_item_kw = t.kind == TokenKind::Ident
            && matches!(
                kw,
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "const"
                    | "static" | "type"
            );
        if !is_item_kw {
            pending = Pending::default();
            i += 1;
            continue;
        }
        let end = parse_one_item(tokens, match_of, i, hi, kw, &pending, container, items, uses);
        pending = Pending::default();
        i = end + 1;
    }
}

/// Parses a single item whose keyword sits at `kw_idx`; returns the index
/// of the item's final token.
#[allow(clippy::too_many_arguments)]
fn parse_one_item(
    tokens: &[Token],
    match_of: &[Option<usize>],
    kw_idx: usize,
    hi: usize,
    kw: &str,
    pending: &Pending,
    container: Container,
    items: &mut Vec<Item>,
    uses: &mut Vec<UseImport>,
) -> usize {
    let next_ident = |from: usize| -> Option<(usize, String)> {
        tokens
            .get(from)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (from, t.text.clone()))
    };
    let mut item = Item {
        kind: ItemKind::Fn,
        name: String::new(),
        is_pub: pending.is_pub,
        kw: kw_idx,
        body: None,
        end: kw_idx,
        derives: pending.derives.clone(),
        has_must_use: pending.has_must_use,
        sig: None,
        fields: Vec::new(),
        is_static_mut: false,
        container,
    };
    match kw {
        "use" => {
            let end = parse_use(tokens, kw_idx + 1, hi, &mut Vec::new(), uses);
            return end;
        }
        "fn" => {
            let Some((name_idx, name)) = next_ident(kw_idx + 1) else {
                return kw_idx;
            };
            item.name = name;
            let mut k = name_idx + 1;
            if tokens.get(k).is_some_and(|t| t.is_punct("<")) {
                k = skip_angles(tokens, k);
            }
            let mut sig = FnSig::default();
            if tokens.get(k).is_some_and(|t| t.is_punct("(")) {
                if let Some(close) = match_of.get(k).copied().flatten() {
                    sig.params = parse_params(tokens, k + 1, close);
                    k = close + 1;
                }
            }
            // Header tail: optional `-> Type`, optional `where ..`, then
            // `{` body or `;` (trait method declaration).
            let mut saw_where = false;
            while k < hi {
                let t = &tokens[k];
                if t.is_punct("->") && !saw_where {
                    let stop = scan_depth0(tokens, k + 1, hi, &[";", "{", "where"]);
                    sig.ret = type_head(tokens, k + 1, stop);
                    k = stop;
                } else if t.is_ident("where") {
                    saw_where = true;
                    k += 1;
                } else if t.is_punct("{") {
                    let close = match_of.get(k).copied().flatten().unwrap_or(hi - 1);
                    item.body = Some((k, close));
                    item.end = close;
                    break;
                } else if t.is_punct(";") {
                    item.end = k;
                    break;
                } else {
                    k += 1;
                }
            }
            if item.end == kw_idx {
                item.end = hi.saturating_sub(1);
            }
            item.sig = Some(sig);
        }
        "struct" | "enum" => {
            item.kind = if kw == "struct" { ItemKind::Struct } else { ItemKind::Enum };
            let Some((name_idx, name)) = next_ident(kw_idx + 1) else {
                return kw_idx;
            };
            item.name = name;
            let mut k = name_idx + 1;
            if tokens.get(k).is_some_and(|t| t.is_punct("<")) {
                k = skip_angles(tokens, k);
            }
            let stop = scan_depth0(tokens, k, hi, &[";", "{", "("]);
            match tokens.get(stop).map(|t| t.text.as_str()) {
                Some("{") => {
                    let close = match_of.get(stop).copied().flatten().unwrap_or(hi - 1);
                    item.body = Some((stop, close));
                    item.end = close;
                    if item.kind == ItemKind::Struct {
                        item.fields = parse_fields(tokens, stop + 1, close);
                    }
                }
                Some("(") => {
                    // Tuple struct: skip the group, end at the `;`.
                    let close = match_of.get(stop).copied().flatten().unwrap_or(stop);
                    item.end = scan_depth0(tokens, close + 1, hi, &[";"]).min(hi - 1);
                }
                _ => item.end = stop.min(hi.saturating_sub(1)),
            }
        }
        "impl" | "trait" | "mod" => {
            item.kind = match kw {
                "impl" => ItemKind::Impl,
                "trait" => ItemKind::Trait,
                _ => ItemKind::Mod,
            };
            let mut k = kw_idx + 1;
            if tokens.get(k).is_some_and(|t| t.is_punct("<")) {
                k = skip_angles(tokens, k);
            }
            let body_or_semi = scan_depth0(tokens, k, hi, &["{", ";"]);
            let mut child_container = container;
            if kw == "impl" {
                let for_idx = scan_depth0(tokens, k, body_or_semi, &["for"]);
                let trait_impl = for_idx < body_or_semi;
                child_container =
                    if trait_impl { Container::TraitImpl } else { Container::InherentImpl };
                let ty_lo = if trait_impl { for_idx + 1 } else { k };
                if let Some(head) = type_head(tokens, ty_lo, body_or_semi) {
                    item.name = head.head;
                }
            } else if kw == "trait" {
                child_container = Container::Trait;
                if let Some((_, name)) = next_ident(k) {
                    item.name = name;
                }
            } else if let Some((_, name)) = next_ident(k) {
                item.name = name;
            }
            if tokens.get(body_or_semi).is_some_and(|t| t.is_punct("{")) {
                let close = match_of.get(body_or_semi).copied().flatten().unwrap_or(hi - 1);
                item.body = Some((body_or_semi, close));
                item.end = close;
                // Emit the container before its children so `items` stays
                // outer-to-inner ordered.
                let end = item.end;
                items.push(item);
                parse_items(
                    tokens,
                    match_of,
                    body_or_semi + 1,
                    close,
                    child_container,
                    items,
                    uses,
                );
                return end;
            }
            item.end = body_or_semi.min(hi.saturating_sub(1));
        }
        "const" | "static" | "type" => {
            item.kind = match kw {
                "const" => ItemKind::Const,
                "static" => ItemKind::Static,
                _ => ItemKind::TypeAlias,
            };
            let mut k = kw_idx + 1;
            if kw == "static" && tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                item.is_static_mut = true;
                k += 1;
            }
            if let Some((_, name)) = next_ident(k) {
                item.name = name;
            }
            item.end = scan_depth0(tokens, k, hi, &[";"]).min(hi.saturating_sub(1));
        }
        _ => return kw_idx,
    }
    items.push(item);
    items.last().map_or(kw_idx, |it| it.end)
}

/// Parses one `use` tree level; `prefix` carries the path segments
/// accumulated so far. Returns the index of the terminating `;` (or of
/// the `,`/`}` that ends a nested level).
fn parse_use(
    tokens: &[Token],
    mut i: usize,
    hi: usize,
    prefix: &mut Vec<String>,
    uses: &mut Vec<UseImport>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut alias: Option<String> = None;
    let mut saw_group_or_glob = false;
    while i < hi {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text == "as" {
            if let Some(a) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                alias = Some(a.text.clone());
                i += 2;
                continue;
            }
        }
        if t.kind == TokenKind::Ident {
            prefix.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        if t.is_punct("*") {
            saw_group_or_glob = true;
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            saw_group_or_glob = true;
            i += 1;
            loop {
                i = parse_use(tokens, i, hi, prefix, uses);
                if tokens.get(i).is_some_and(|n| n.is_punct(",")) {
                    i += 1;
                    continue;
                }
                break;
            }
            if tokens.get(i).is_some_and(|n| n.is_punct("}")) {
                i += 1;
            }
            continue;
        }
        // `;`, `,`, `}` — end of this level.
        break;
    }
    if !saw_group_or_glob && prefix.len() > depth_at_entry {
        // `self` re-exports the parent segment (`use a::b::{self}`).
        let last_real = prefix.iter().rev().find(|s| s.as_str() != "self");
        if let Some(last) = last_real {
            let local = alias.unwrap_or_else(|| last.clone());
            let path: Vec<&str> =
                prefix.iter().filter(|s| s.as_str() != "self").map(|s| s.as_str()).collect();
            uses.push(UseImport { local, path: path.join("::") });
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Vec<Token>, ParsedFile) {
        let tokens = lex(src).tokens;
        let parsed = parse(&tokens);
        (tokens, parsed)
    }

    #[test]
    fn delimiters_pair_up() {
        let (tokens, p) = parse_src("fn f(a: [u8; 2]) { g(1); }");
        for (i, m) in p.match_of.iter().enumerate() {
            if let Some(j) = m {
                assert_eq!(p.match_of[*j], Some(i), "pairing must be symmetric");
                assert_ne!(tokens[i].text, tokens[*j].text);
            }
        }
        let opens = p.match_of.iter().filter(|m| m.is_some()).count();
        assert_eq!(opens, 8, "four pairs, each marked on both ends");
    }

    #[test]
    fn fn_signatures_and_bodies() {
        let (_, p) = parse_src(
            "pub fn save(&self, path: &Path, m: HashMap<NodeId, f64>) -> io::Result<()> {\n    body();\n}\nfn private(x: u32) {}\n",
        );
        assert_eq!(p.items.len(), 2);
        let save = &p.items[0];
        assert_eq!((save.kind, save.is_pub, save.name.as_str()), (ItemKind::Fn, true, "save"));
        let sig = save.sig.clone().unwrap_or_default();
        assert_eq!(sig.params.len(), 2, "self receiver skipped: {:?}", sig.params);
        assert_eq!(sig.params[1].0, "m");
        assert_eq!(sig.params[1].1.head, "HashMap");
        assert_eq!(sig.params[1].1.args, vec!["NodeId", "f64"]);
        assert_eq!(sig.ret.clone().map(|r| r.head), Some("Result".to_string()));
        assert!(save.body.is_some());
        assert!(!p.items[1].is_pub);
    }

    #[test]
    fn generics_and_where_clauses() {
        let (_, p) = parse_src(
            "pub fn pick<T: Ord, F>(xs: Vec<Vec<T>>, f: F) -> Option<T>\nwhere F: Fn(&T) -> bool {\n    None\n}\n",
        );
        let sig = p.items[0].sig.clone().unwrap_or_default();
        assert_eq!(sig.ret.clone().map(|r| r.head), Some("Option".to_string()));
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[0].1.head, "Vec");
    }

    #[test]
    fn struct_fields_and_derives() {
        let (_, p) = parse_src(
            "#[derive(Debug, Clone, Serialize)]\npub struct Topology {\n    pub latencies: HashMap<(NodeId, NodeId), SimTime>,\n    processing_delay: SimTime,\n}\n",
        );
        let s = &p.items[0];
        assert_eq!(s.kind, ItemKind::Struct);
        assert_eq!(s.derives, vec!["Debug", "Clone", "Serialize"]);
        assert_eq!(s.fields.len(), 2, "{:?}", s.fields);
        assert_eq!(s.fields[0].0, "latencies");
        assert_eq!(s.fields[0].1.head, "HashMap");
        assert_eq!(s.fields[1].1.head, "SimTime");
    }

    #[test]
    fn impl_blocks_and_containers() {
        let (_, p) = parse_src(
            "impl Topology {\n    pub fn max_rtt(&self) -> SimTime { body() }\n}\nimpl fmt::Display for NodeId {\n    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result { ok() }\n}\n",
        );
        let kinds: Vec<(ItemKind, Container, &str)> =
            p.items.iter().map(|i| (i.kind, i.container, i.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Impl, Container::TopLevel, "Topology"),
                (ItemKind::Fn, Container::InherentImpl, "max_rtt"),
                (ItemKind::Impl, Container::TopLevel, "NodeId"),
                (ItemKind::Fn, Container::TraitImpl, "fmt"),
            ]
        );
    }

    #[test]
    fn modules_recurse_and_const_fn_is_fn() {
        let (_, p) = parse_src(
            "mod inner {\n    pub const fn f() -> u32 { 1 }\n    static mut COUNTER: u32 = 0;\n}\n",
        );
        assert_eq!(p.items[0].kind, ItemKind::Mod);
        assert_eq!(p.items[1].kind, ItemKind::Fn);
        assert!(p.items[1].is_pub);
        assert_eq!(p.items[2].kind, ItemKind::Static);
        assert!(p.items[2].is_static_mut);
        assert_eq!(p.items[2].name, "COUNTER");
    }

    #[test]
    fn must_use_attr_is_seen() {
        let (_, p) = parse_src(
            "#[must_use = \"handle the error\"]\npub fn a() -> Result<(), E> { ok() }\npub fn b() -> Result<(), E> { ok() }\n",
        );
        assert!(p.items[0].has_must_use);
        assert!(!p.items[1].has_must_use);
    }

    #[test]
    fn use_imports_with_aliases_groups_and_self() {
        let (_, p) = parse_src(
            "use std::collections::{HashMap, HashSet as Fast};\nuse std::fmt::{self, Write};\nuse crate::model::NodeId;\n",
        );
        let got: Vec<(String, String)> =
            p.uses.iter().map(|u| (u.local.clone(), u.path.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("HashMap".to_string(), "std::collections::HashMap".to_string()),
                ("Fast".to_string(), "std::collections::HashSet".to_string()),
                ("fmt".to_string(), "std::fmt".to_string()),
                ("Write".to_string(), "std::fmt::Write".to_string()),
                ("NodeId".to_string(), "crate::model::NodeId".to_string()),
            ]
        );
        assert!(p.resolves_to("Fast", "HashSet"));
        assert!(p.resolves_to("HashMap", "HashMap"));
        assert!(!p.resolves_to("Write", "HashMap"));
    }

    #[test]
    fn let_bindings_with_types_and_init_heads() {
        let (tokens, _) = parse_src(
            "fn f() {\n    let mut m: HashMap<u32, f64> = HashMap::new();\n    let t = BTreeMap::new();\n    let (a, b) = pair();\n    let plain = 4;\n}\n",
        );
        let binds = let_bindings(&tokens, 0, tokens.len());
        assert_eq!(binds.len(), 3, "{binds:?}");
        assert_eq!(binds[0].name, "m");
        assert_eq!(binds[0].ty.clone().map(|t| t.head), Some("HashMap".to_string()));
        assert_eq!(binds[1].name, "t");
        assert_eq!(binds[1].init_head, Some("BTreeMap".to_string()));
        assert_eq!(binds[2].name, "plain");
    }

    #[test]
    fn type_head_strips_refs_and_wrappers() {
        let heads = |src: &str| -> Option<TypeHead> {
            let tokens = lex(src).tokens;
            type_head(&tokens, 0, tokens.len())
        };
        assert_eq!(heads("&mut HashMap<K, V>").map(|t| t.head), Some("HashMap".to_string()));
        assert_eq!(heads("io::Result<()>").map(|t| t.head), Some("Result".to_string()));
        assert_eq!(heads("&'a [f64]").map(|t| t.head), Some("[".to_string()));
        assert!(heads("dyn Iterator<Item = f64>")
            .is_some_and(|t| t.head == "Iterator" && t.mentions("f64")));
    }

    #[test]
    fn forgiving_on_broken_input() {
        // Unbalanced braces and stray tokens must not panic or loop.
        for src in ["fn f( {", "struct }{", "impl for {", "use ::;", "pub pub fn"] {
            let (_, p) = parse_src(src);
            let _ = p.items.len();
        }
    }
}
