//! Content-based publish/subscribe matching substrate.
//!
//! The paper's resource model charges `F_{b,i}` per message and
//! `G_{b,j}` per message *per consumer*, with the constants "measured on
//! the Gryphon publish/subscribe system" (§4.1, ref \[3\]). This crate builds the
//! middleware layer those constants abstract:
//!
//! * [`message`] — typed schemas, attribute values, and synthetic traffic
//!   generators (e.g. the §1.1 trade-data scenario).
//! * [`filter`] — conjunctive content filters (`price > 80 AND sym == "v3"`)
//!   with short-circuit evaluation and work accounting.
//! * [`matcher`] — two matching engines with identical semantics: a naive
//!   per-subscription evaluator and a counting-algorithm index
//!   (Gryphon/Siena style) that is sub-linear on selective workloads.
//! * [`calibrate`](mod@calibrate) — the paper's measurement exercise, reproduced
//!   deterministically: fit `work/message ≈ F̂ + Ĝ·consumers` against either
//!   engine, then build an optimization problem straight from the fit.
//!
//! # Examples
//!
//! ```
//! use lrgp_pubsub::calibrate::{calibrate, CalibrationConfig};
//! use lrgp_pubsub::matcher::IndexMatcher;
//! use lrgp_pubsub::message::Schema;
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::trade_data());
//! let estimate = calibrate(
//!     &schema,
//!     IndexMatcher::from_filters,
//!     &CalibrationConfig::default(),
//! );
//! assert!(estimate.per_consumer_message > 0.0);
//! assert!(estimate.r_squared > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod filter;
pub mod matcher;
pub mod message;

pub use calibrate::{calibrate, problem_from_calibration, CalibrationConfig, CostEstimate};
pub use filter::{Cmp, Filter, FilterGen, Predicate};
pub use matcher::{IndexMatcher, MatchResult, Matcher, NaiveMatcher, SubscriptionId};
pub use message::{Field, FieldType, Message, Schema, Value};
