//! Message schemas, values and generators.
//!
//! Messages in a content-based pub/sub system carry typed attributes that
//! consumer filters inspect (§1.1: "consumers receive price messages which
//! satisfy a consumer-specified filter, e.g. `price > 80`"). A [`Schema`]
//! fixes the attribute names and types for one flow; a [`Message`] is a
//! dense row of values aligned to its schema.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The type of one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean flag.
    Bool,
    /// Categorical string drawn from a small vocabulary.
    Text,
}

/// One attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Text value.
    Text(String),
}

impl Value {
    /// The type of this value.
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::Int(_) => FieldType::Int,
            Value::Float(_) => FieldType::Float,
            Value::Bool(_) => FieldType::Bool,
            Value::Text(_) => FieldType::Text,
        }
    }

    /// Total order within one type; `None` across types.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            // lrgp-lint: allow(float-total-order, reason = "three-valued compare is the API; None marks NaN/type mismatch as unmatched")
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
        }
    }
}

/// An attribute declaration: name, type, and the generator range used for
/// synthetic traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name (e.g. `"price"`).
    pub name: String,
    /// Attribute type.
    pub field_type: FieldType,
    /// Numeric generation range (ints are drawn in `[lo, hi]`, floats in
    /// `[lo, hi)`); ignored for bools. For text, `hi` is the vocabulary
    /// size (values are `"v0".."v{hi-1}"`).
    pub range: (f64, f64),
}

/// A flow's message schema.
///
/// # Examples
///
/// ```
/// use lrgp_pubsub::message::{Field, FieldType, Schema};
/// let schema = Schema::new(vec![
///     Field { name: "price".into(), field_type: FieldType::Float, range: (0.0, 200.0) },
///     Field { name: "symbol".into(), field_type: FieldType::Text, range: (0.0, 8.0) },
/// ]);
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.field_index("price"), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from field declarations.
    ///
    /// # Panics
    ///
    /// Panics on duplicate field names or an empty field list.
    pub fn new(fields: Vec<Field>) -> Self {
        assert!(!fields.is_empty(), "schema needs at least one field");
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name {:?}",
                f.name
            );
        }
        Self { fields }
    }

    /// A schema resembling the paper's trade-data scenario: price, size,
    /// symbol, urgent flag.
    pub fn trade_data() -> Self {
        Self::new(vec![
            Field { name: "price".into(), field_type: FieldType::Float, range: (0.0, 200.0) },
            Field { name: "size".into(), field_type: FieldType::Int, range: (1.0, 10_000.0) },
            Field { name: "symbol".into(), field_type: FieldType::Text, range: (0.0, 32.0) },
            Field { name: "urgent".into(), field_type: FieldType::Bool, range: (0.0, 1.0) },
        ])
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the schema has no fields (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the field named `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Generates a random message conforming to this schema.
    pub fn generate<R: Rng>(self: &Arc<Self>, rng: &mut R) -> Message {
        let values = self
            .fields
            .iter()
            .map(|f| match f.field_type {
                FieldType::Int => Value::Int(rng.gen_range(f.range.0 as i64..=f.range.1 as i64)),
                FieldType::Float => Value::Float(rng.gen_range(f.range.0..f.range.1)),
                FieldType::Bool => Value::Bool(rng.gen_bool(0.5)),
                FieldType::Text => {
                    Value::Text(format!("v{}", rng.gen_range(0..f.range.1 as u32)))
                }
            })
            .collect();
        Message { schema: Arc::clone(self), values }
    }
}

/// A message: a dense value row over a shared schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    schema: Arc<Schema>,
    values: Vec<Value>,
}

impl Message {
    /// Creates a message, checking arity and types against the schema.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the schema's arity or types.
    pub fn new(schema: Arc<Schema>, values: Vec<Value>) -> Self {
        assert_eq!(values.len(), schema.len(), "message arity mismatch");
        for (v, f) in values.iter().zip(schema.fields()) {
            assert_eq!(v.field_type(), f.field_type, "type mismatch for field {:?}", f.name);
        }
        Self { schema, values }
    }

    /// The schema this message conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The value at field index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// The value of the field named `name`, if it exists.
    pub fn value_by_name(&self, name: &str) -> Option<&Value> {
        self.schema.field_index(name).map(|i| &self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schema_construction_and_lookup() {
        let s = Schema::trade_data();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.field_index("price"), Some(0));
        assert_eq!(s.field_index("urgent"), Some(3));
        assert_eq!(s.field_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn schema_rejects_duplicates() {
        let f = Field { name: "x".into(), field_type: FieldType::Int, range: (0.0, 1.0) };
        let _ = Schema::new(vec![f.clone(), f]);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn schema_rejects_empty() {
        let _ = Schema::new(vec![]);
    }

    #[test]
    fn generated_messages_conform() {
        let schema = Arc::new(Schema::trade_data());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let m = schema.generate(&mut rng);
            match m.value_by_name("price") {
                Some(Value::Float(p)) => assert!((0.0..200.0).contains(p)),
                other => panic!("bad price {other:?}"),
            }
            match m.value_by_name("size") {
                Some(Value::Int(s)) => assert!((1..=10_000).contains(s)),
                other => panic!("bad size {other:?}"),
            }
            match m.value_by_name("symbol") {
                Some(Value::Text(t)) => assert!(t.starts_with('v')),
                other => panic!("bad symbol {other:?}"),
            }
        }
    }

    #[test]
    fn generation_deterministic_per_seed() {
        let schema = Arc::new(Schema::trade_data());
        let a: Vec<Message> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| schema.generate(&mut rng)).collect()
        };
        let b: Vec<Message> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| schema.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn message_type_checking() {
        let schema = Arc::new(Schema::new(vec![Field {
            name: "x".into(),
            field_type: FieldType::Int,
            range: (0.0, 10.0),
        }]));
        let m = Message::new(Arc::clone(&schema), vec![Value::Int(5)]);
        assert_eq!(m.value(0), &Value::Int(5));
        assert_eq!(m.schema().len(), 1);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn message_rejects_wrong_type() {
        let schema = Arc::new(Schema::new(vec![Field {
            name: "x".into(),
            field_type: FieldType::Int,
            range: (0.0, 10.0),
        }]));
        let _ = Message::new(schema, vec![Value::Bool(true)]);
    }

    #[test]
    fn value_ordering_and_display() {
        use std::cmp::Ordering;
        assert_eq!(
            Value::Int(1).partial_cmp_same_type(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.0).partial_cmp_same_type(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).partial_cmp_same_type(&Value::Bool(true)), None);
        assert_eq!(Value::Text("a".into()).to_string(), "\"a\"");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Int(7).field_type(), FieldType::Int);
    }
}
