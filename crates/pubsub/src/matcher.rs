//! Matching engines: deciding which subscriptions a message satisfies.
//!
//! Two implementations with identical semantics:
//!
//! * [`NaiveMatcher`] — evaluate every subscription's filter against every
//!   message (`O(Σ predicates)` per message). The per-consumer cost this
//!   incurs is the physical reality behind the paper's `G_{b,j}·n_j·r_i`
//!   term.
//! * [`IndexMatcher`] — a counting-algorithm index in the style of
//!   Gryphon/Siena: per-field sorted threshold lists for numeric range
//!   predicates, hash buckets for equality predicates, and a per-message
//!   satisfied-predicate counter. Sub-linear in the number of
//!   subscriptions for selective workloads.
//!
//! Both report *work units* (predicate evaluations / index operations) so
//! [`crate::calibrate`](mod@crate::calibrate) can turn matching cost into the optimizer's
//! resource coefficients deterministically.

use crate::filter::{Cmp, Filter, Predicate};
use crate::message::{Message, Value};
use std::collections::BTreeMap;

/// Identifies one subscription within a matcher.
pub type SubscriptionId = usize;

/// Result of matching one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Subscriptions whose filters the message satisfies, ascending.
    pub matches: Vec<SubscriptionId>,
    /// Work units expended (predicate evaluations or index operations).
    pub work: u64,
}

/// Common interface of the matching engines.
pub trait Matcher {
    /// Adds a subscription; returns its id (dense, starting at 0).
    fn subscribe(&mut self, filter: Filter) -> SubscriptionId;

    /// Matches a message against every subscription.
    fn match_message(&self, message: &Message) -> MatchResult;

    /// Number of subscriptions.
    fn len(&self) -> usize;

    /// `true` when no subscriptions exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Brute-force matcher: evaluates every filter.
#[derive(Debug, Clone, Default)]
pub struct NaiveMatcher {
    filters: Vec<Filter>,
}

impl NaiveMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Matcher for NaiveMatcher {
    fn subscribe(&mut self, filter: Filter) -> SubscriptionId {
        self.filters.push(filter);
        self.filters.len() - 1
    }

    fn match_message(&self, message: &Message) -> MatchResult {
        let mut matches = Vec::new();
        let mut work = 0;
        for (id, filter) in self.filters.iter().enumerate() {
            let (ok, evaluated) = filter.evaluate_counting(message);
            work += evaluated as u64;
            if ok {
                matches.push(id);
            }
        }
        MatchResult { matches, work }
    }

    fn len(&self) -> usize {
        self.filters.len()
    }
}

/// An ordered projection of the values usable as equality-bucket keys.
/// The derived `Ord` (variant order, then payload) is what makes the
/// BTreeMap buckets iterate deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Key {
    Int(i64),
    Bool(bool),
    Text(String),
}

impl Key {
    fn from_value(v: &Value) -> Option<Key> {
        match v {
            Value::Int(i) => Some(Key::Int(*i)),
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Text(t) => Some(Key::Text(t.clone())),
            Value::Float(_) => None, // float equality goes to the residual
        }
    }
}

/// A numeric threshold predicate in the per-field sorted lists.
#[derive(Debug, Clone)]
struct Threshold {
    value: f64,
    /// `true` when the boundary itself satisfies (Le in the upper list,
    /// Ge in the lower list).
    inclusive: bool,
    subscription: SubscriptionId,
}

/// Sorted threshold lists for one field: `upper` holds Lt/Le predicates
/// (satisfied when the message value is below the threshold), `lower`
/// holds Ge/Gt (satisfied when above).
#[derive(Debug, Clone, Default)]
struct FieldThresholds {
    upper: Vec<Threshold>,
    lower: Vec<Threshold>,
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Counting-algorithm index matcher.
#[derive(Debug, Clone, Default)]
pub struct IndexMatcher {
    /// Predicate count per subscription (0 = match-all).
    predicate_counts: Vec<usize>,
    /// (field, key) → subscriptions with an equality predicate on it.
    equality: BTreeMap<(usize, Key), Vec<SubscriptionId>>,
    /// Per field: numeric range predicates in sorted threshold lists.
    thresholds: BTreeMap<usize, FieldThresholds>,
    /// Predicates the index cannot accelerate (Ne, float equality,
    /// type-mismatched): evaluated directly.
    residual: Vec<(SubscriptionId, Predicate)>,
}

impl IndexMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index matcher from existing filters.
    pub fn from_filters(filters: impl IntoIterator<Item = Filter>) -> Self {
        let mut m = Self::new();
        for f in filters {
            m.subscribe(f);
        }
        m
    }
}

impl Matcher for IndexMatcher {
    fn subscribe(&mut self, filter: Filter) -> SubscriptionId {
        let id = self.predicate_counts.len();
        self.predicate_counts.push(filter.len());
        for p in filter.predicates() {
            match p.op {
                Cmp::Eq => match Key::from_value(&p.constant) {
                    Some(key) => {
                        self.equality.entry((p.field, key)).or_default().push(id);
                    }
                    None => self.residual.push((id, p.clone())),
                },
                Cmp::Lt | Cmp::Le | Cmp::Ge | Cmp::Gt => match numeric(&p.constant) {
                    Some(value) => {
                        let lists = self.thresholds.entry(p.field).or_default();
                        let (list, inclusive) = match p.op {
                            Cmp::Lt => (&mut lists.upper, false),
                            Cmp::Le => (&mut lists.upper, true),
                            Cmp::Ge => (&mut lists.lower, true),
                            Cmp::Gt => (&mut lists.lower, false),
                            _ => unreachable!(),
                        };
                        list.push(Threshold { value, inclusive, subscription: id });
                        // Total order: a NaN constant must land in a fixed
                        // position or the binary-search partition (and thus
                        // the match result) depends on insertion history.
                        list.sort_by(|a, b| a.value.total_cmp(&b.value));
                    }
                    None => self.residual.push((id, p.clone())),
                },
                Cmp::Ne => self.residual.push((id, p.clone())),
            }
        }
        id
    }

    fn match_message(&self, message: &Message) -> MatchResult {
        let mut satisfied = vec![0usize; self.predicate_counts.len()];
        let mut work: u64 = 0;

        // Equality buckets: one hash probe per field.
        for field in 0..message.schema().len() {
            work += 1;
            if let Some(key) = Key::from_value(message.value(field)) {
                if let Some(subs) = self.equality.get(&(field, key)) {
                    for &s in subs {
                        satisfied[s] += 1;
                        work += 1;
                    }
                }
            }
        }
        // Threshold lists: binary-search each field's sorted lists, then
        // touch only the *satisfied* predicates (the counting algorithm's
        // core trick — unsatisfied range predicates cost nothing).
        for (field, lists) in &self.thresholds {
            let Some(v) = numeric(message.value(*field)) else { continue };
            // Upper list (Lt/Le): satisfied when v < t, or v == t and Le.
            work += 1; // binary search
            let start = lists.upper.partition_point(|t| t.value < v);
            for t in &lists.upper[start..] {
                work += 1;
                // The boundary test must be explicit: a NaN threshold sits in
                // this suffix (total_cmp sorts it last) but satisfies nothing.
                if t.value > v || (t.inclusive && t.value == v) {
                    satisfied[t.subscription] += 1;
                }
            }
            // Lower list (Ge/Gt): satisfied when v > t, or v == t and Ge.
            work += 1; // binary search
            let end = lists.lower.partition_point(|t| t.value < v);
            for t in &lists.lower[..end] {
                work += 1;
                satisfied[t.subscription] += 1;
            }
            // Boundary ties for the lower list (t.value == v, Ge only).
            // `!= v` (not `> v`) so a trailing NaN threshold also stops the
            // scan instead of being treated as a tie.
            for t in &lists.lower[end..] {
                if t.value != v {
                    break;
                }
                work += 1;
                if t.inclusive {
                    satisfied[t.subscription] += 1;
                }
            }
        }
        // Residual predicates.
        for (s, p) in &self.residual {
            work += 1;
            if p.matches(message) {
                satisfied[*s] += 1;
            }
        }

        let matches = satisfied
            .iter()
            .zip(&self.predicate_counts)
            .enumerate()
            .filter(|(_, (&got, &need))| got == need)
            .map(|(id, _)| id)
            .collect();
        MatchResult { matches, work }
    }

    fn len(&self) -> usize {
        self.predicate_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{FilterGen, Predicate};
    use crate::message::{Field, FieldType, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Field { name: "price".into(), field_type: FieldType::Float, range: (0.0, 100.0) },
            Field { name: "qty".into(), field_type: FieldType::Int, range: (0.0, 50.0) },
            Field { name: "sym".into(), field_type: FieldType::Text, range: (0.0, 6.0) },
            Field { name: "hot".into(), field_type: FieldType::Bool, range: (0.0, 1.0) },
        ]))
    }

    fn both_matchers(filters: Vec<Filter>) -> (NaiveMatcher, IndexMatcher) {
        let mut naive = NaiveMatcher::new();
        for f in filters.clone() {
            naive.subscribe(f);
        }
        (naive, IndexMatcher::from_filters(filters))
    }

    #[test]
    fn empty_matchers_match_nothing() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(0);
        let m = s.generate(&mut rng);
        let (naive, index) = both_matchers(vec![]);
        assert!(naive.is_empty() && index.is_empty());
        assert!(naive.match_message(&m).matches.is_empty());
        assert!(index.match_message(&m).matches.is_empty());
    }

    #[test]
    fn match_all_filters_match_everything() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(0);
        let m = s.generate(&mut rng);
        let (naive, index) = both_matchers(vec![Filter::all(), Filter::all()]);
        assert_eq!(naive.match_message(&m).matches, vec![0, 1]);
        assert_eq!(index.match_message(&m).matches, vec![0, 1]);
    }

    #[test]
    fn index_equals_naive_on_random_workloads() {
        let s = schema();
        let gen = FilterGen { predicates: (1, 4), range_bias: 0.6 };
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let filters: Vec<Filter> = (0..200).map(|_| gen.generate(&s, &mut rng)).collect();
            let (naive, index) = both_matchers(filters);
            for _ in 0..100 {
                let m = s.generate(&mut rng);
                let a = naive.match_message(&m);
                let b = index.match_message(&m);
                assert_eq!(a.matches, b.matches, "divergence on seed {seed}");
            }
        }
    }

    #[test]
    fn index_handles_every_operator() {
        let s = schema();
        let filters: Vec<Filter> = Cmp::ALL
            .iter()
            .map(|&op| {
                Filter::new(
                    &s,
                    vec![Predicate { field: 1, op, constant: Value::Int(25) }],
                )
            })
            .collect();
        let (naive, index) = both_matchers(filters);
        for qty in [0i64, 24, 25, 26, 50] {
            let m = message_with_qty(&s, qty);
            assert_eq!(
                naive.match_message(&m).matches,
                index.match_message(&m).matches,
                "qty {qty}"
            );
        }
    }

    #[allow(non_snake_case)]
    fn message_with_qty(s: &Arc<Schema>, qty: i64) -> Message {
        Message::new(
            Arc::clone(s),
            vec![
                Value::Float(50.0),
                Value::Int(qty),
                Value::Text("v0".into()),
                Value::Bool(true),
            ],
        )
    }

    #[test]
    fn nan_threshold_constant_matches_nothing_in_any_insertion_order() {
        let s = schema();
        let mk = |op, c| Filter::new(&s, vec![Predicate { field: 0, op, constant: Value::Float(c) }]);
        // Every range operator with a NaN constant, plus finite filters the
        // message (price = 50.0) does satisfy.
        for nan_op in [Cmp::Lt, Cmp::Le, Cmp::Ge, Cmp::Gt] {
            let orders: [Vec<Filter>; 2] = [
                vec![mk(nan_op, f64::NAN), mk(Cmp::Ge, 10.0), mk(Cmp::Le, 90.0)],
                vec![mk(Cmp::Ge, 10.0), mk(Cmp::Le, 90.0), mk(nan_op, f64::NAN)],
            ];
            for (which, filters) in orders.into_iter().enumerate() {
                let nan_id = filters
                    .iter()
                    .position(|f| {
                        f.predicates().iter().any(|p| matches!(p.constant, Value::Float(c) if c.is_nan()))
                    })
                    .expect("one NaN filter per order");
                let (naive, index) = both_matchers(filters);
                let m = message_with_qty(&s, 1);
                let a = naive.match_message(&m);
                let b = index.match_message(&m);
                assert_eq!(a.matches, b.matches, "op {nan_op:?} order {which}");
                assert!(!b.matches.contains(&nan_id), "NaN {nan_op:?} matched in order {which}");
                assert_eq!(b.matches.len(), 2, "finite filters must still match");
            }
        }
    }

    #[test]
    fn nan_message_value_matches_no_range_predicate() {
        let s = schema();
        let filters: Vec<Filter> = [Cmp::Lt, Cmp::Le, Cmp::Ge, Cmp::Gt]
            .into_iter()
            .map(|op| {
                Filter::new(&s, vec![Predicate { field: 0, op, constant: Value::Float(50.0) }])
            })
            .collect();
        let (naive, index) = both_matchers(filters);
        let m = Message::new(
            Arc::clone(&s),
            vec![
                Value::Float(f64::NAN),
                Value::Int(1),
                Value::Text("v0".into()),
                Value::Bool(true),
            ],
        );
        assert!(naive.match_message(&m).matches.is_empty());
        assert!(index.match_message(&m).matches.is_empty());
    }

    #[test]
    fn float_equality_routed_to_residual_correctly() {
        let s = schema();
        let f = Filter::new(
            &s,
            vec![Predicate { field: 0, op: Cmp::Eq, constant: Value::Float(50.0) }],
        );
        let (naive, index) = both_matchers(vec![f]);
        let hit = message_with_qty(&s, 1); // price = 50.0
        assert_eq!(naive.match_message(&hit).matches, vec![0]);
        assert_eq!(index.match_message(&hit).matches, vec![0]);
    }

    #[test]
    fn index_work_beats_naive_on_selective_equality_workload() {
        // 1000 subscriptions each demanding a specific symbol: the index
        // probes one bucket; naive evaluates all 1000.
        let s = schema();
        let filters: Vec<Filter> = (0..1000)
            .map(|k| {
                Filter::new(
                    &s,
                    vec![Predicate {
                        field: 2,
                        op: Cmp::Eq,
                        constant: Value::Text(format!("v{}", k % 6)),
                    }],
                )
            })
            .collect();
        let (naive, index) = both_matchers(filters);
        let m = message_with_qty(&s, 1); // sym = v0
        let a = naive.match_message(&m);
        let b = index.match_message(&m);
        assert_eq!(a.matches, b.matches);
        assert!(
            b.work * 3 < a.work,
            "index work {} should be well under naive {}",
            b.work,
            a.work
        );
    }

    #[test]
    fn work_units_are_positive_and_grow_with_subscriptions() {
        let s = schema();
        let gen = FilterGen::default();
        let mut rng = StdRng::seed_from_u64(11);
        let small: Vec<Filter> = (0..10).map(|_| gen.generate(&s, &mut rng)).collect();
        let large: Vec<Filter> = (0..500).map(|_| gen.generate(&s, &mut rng)).collect();
        let m = s.generate(&mut rng);
        let (naive_small, _) = both_matchers(small);
        let (naive_large, _) = both_matchers(large);
        let ws = naive_small.match_message(&m).work;
        let wl = naive_large.match_message(&m).work;
        assert!(ws > 0);
        assert!(wl > ws);
    }
}
