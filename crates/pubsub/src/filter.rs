//! Consumer filters: conjunctions of attribute predicates.
//!
//! Filters follow the classic content-based pub/sub model (Gryphon, Siena):
//! each subscription is a conjunction of comparisons on message attributes,
//! e.g. `price > 80 AND symbol == "v3"`. Evaluation cost grows with the
//! number of predicates — exactly the per-consumer processing the paper's
//! `G_{b,j}` coefficient charges for.

use crate::message::{FieldType, Message, Schema, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl Cmp {
    /// Applies the operator to an ordering result.
    pub fn test(self, ordering: Ordering) -> bool {
        match self {
            Cmp::Lt => ordering == Ordering::Less,
            Cmp::Le => ordering != Ordering::Greater,
            Cmp::Eq => ordering == Ordering::Equal,
            Cmp::Ne => ordering != Ordering::Equal,
            Cmp::Ge => ordering != Ordering::Less,
            Cmp::Gt => ordering == Ordering::Greater,
        }
    }

    /// All operators.
    pub const ALL: [Cmp; 6] = [Cmp::Lt, Cmp::Le, Cmp::Eq, Cmp::Ne, Cmp::Ge, Cmp::Gt];
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        })
    }
}

/// One comparison on one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Field index into the schema.
    pub field: usize,
    /// Comparison operator.
    pub op: Cmp,
    /// Constant to compare against (must match the field's type).
    pub constant: Value,
}

impl Predicate {
    /// Evaluates the predicate against a message.
    ///
    /// Returns `false` (never matches) if the types are incomparable — a
    /// malformed subscription must not match everything.
    pub fn matches(&self, message: &Message) -> bool {
        message
            .value(self.field)
            .partial_cmp_same_type(&self.constant)
            .map(|o| self.op.test(o))
            .unwrap_or(false)
    }
}

/// A conjunctive filter: matches when every predicate matches. An empty
/// filter matches everything (a topic-style "give me the whole flow"
/// subscription).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// The match-everything filter.
    pub fn all() -> Self {
        Self::default()
    }

    /// Builds a filter from predicates, validating field indices and types
    /// against `schema`.
    ///
    /// # Panics
    ///
    /// Panics if a predicate references an unknown field or a constant of
    /// the wrong type.
    pub fn new(schema: &Schema, predicates: Vec<Predicate>) -> Self {
        for p in &predicates {
            let field = schema
                .fields()
                .get(p.field)
                // lrgp-lint: allow(library-unwrap, reason = "schema mismatch is a caller bug; documented panic contract")
                .unwrap_or_else(|| panic!("predicate references unknown field {}", p.field));
            assert_eq!(
                p.constant.field_type(),
                field.field_type,
                "predicate constant type mismatch on field {:?}",
                field.name
            );
        }
        Self { predicates }
    }

    /// The predicates of this conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates (the evaluation cost driver).
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// `true` for the match-everything filter.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluates the conjunction. Returns the result and the number of
    /// predicates actually evaluated (short-circuit on the first failure) —
    /// the operation count feeds cost calibration.
    pub fn evaluate_counting(&self, message: &Message) -> (bool, usize) {
        let mut evaluated = 0;
        for p in &self.predicates {
            evaluated += 1;
            if !p.matches(message) {
                return (false, evaluated);
            }
        }
        (true, evaluated)
    }

    /// Evaluates the conjunction.
    pub fn matches(&self, message: &Message) -> bool {
        self.evaluate_counting(message).0
    }
}

/// Random-filter generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterGen {
    /// Inclusive range of predicates per filter.
    pub predicates: (usize, usize),
    /// Probability that a numeric predicate is a range comparison
    /// (`<`/`<=`/`>`/`>=`) rather than (in)equality.
    pub range_bias: f64,
}

impl Default for FilterGen {
    fn default() -> Self {
        Self { predicates: (1, 3), range_bias: 0.8 }
    }
}

impl FilterGen {
    /// Generates a random well-typed filter over `schema`.
    pub fn generate<R: Rng>(&self, schema: &Arc<Schema>, rng: &mut R) -> Filter {
        let count = rng.gen_range(self.predicates.0..=self.predicates.1);
        let predicates = (0..count)
            .map(|_| {
                let field = rng.gen_range(0..schema.len());
                let spec = &schema.fields()[field];
                let constant = match spec.field_type {
                    FieldType::Int => {
                        Value::Int(rng.gen_range(spec.range.0 as i64..=spec.range.1 as i64))
                    }
                    FieldType::Float => Value::Float(rng.gen_range(spec.range.0..spec.range.1)),
                    FieldType::Bool => Value::Bool(rng.gen_bool(0.5)),
                    FieldType::Text => {
                        Value::Text(format!("v{}", rng.gen_range(0..spec.range.1 as u32)))
                    }
                };
                let op = match spec.field_type {
                    FieldType::Bool | FieldType::Text => {
                        if rng.gen_bool(0.5) {
                            Cmp::Eq
                        } else {
                            Cmp::Ne
                        }
                    }
                    _ if rng.gen_bool(self.range_bias) => {
                        [Cmp::Lt, Cmp::Le, Cmp::Ge, Cmp::Gt][rng.gen_range(0..4usize)]
                    }
                    _ => {
                        if rng.gen_bool(0.5) {
                            Cmp::Eq
                        } else {
                            Cmp::Ne
                        }
                    }
                };
                Predicate { field, op, constant }
            })
            .collect();
        Filter::new(schema, predicates)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "f{} {} {}", p.field, p.op, p.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Field { name: "price".into(), field_type: FieldType::Float, range: (0.0, 100.0) },
            Field { name: "qty".into(), field_type: FieldType::Int, range: (0.0, 10.0) },
        ]))
    }

    fn msg(price: f64, qty: i64) -> Message {
        Message::new(schema(), vec![Value::Float(price), Value::Int(qty)])
    }

    #[test]
    fn operators_cover_all_orderings() {
        use std::cmp::Ordering::*;
        assert!(Cmp::Lt.test(Less) && !Cmp::Lt.test(Equal) && !Cmp::Lt.test(Greater));
        assert!(Cmp::Le.test(Less) && Cmp::Le.test(Equal) && !Cmp::Le.test(Greater));
        assert!(!Cmp::Eq.test(Less) && Cmp::Eq.test(Equal) && !Cmp::Eq.test(Greater));
        assert!(Cmp::Ne.test(Less) && !Cmp::Ne.test(Equal) && Cmp::Ne.test(Greater));
        assert!(!Cmp::Ge.test(Less) && Cmp::Ge.test(Equal) && Cmp::Ge.test(Greater));
        assert!(!Cmp::Gt.test(Less) && !Cmp::Gt.test(Equal) && Cmp::Gt.test(Greater));
        assert_eq!(Cmp::ALL.len(), 6);
    }

    #[test]
    fn paper_example_price_filter() {
        // §1.1: "price > 80".
        let f = Filter::new(
            &schema(),
            vec![Predicate { field: 0, op: Cmp::Gt, constant: Value::Float(80.0) }],
        );
        assert!(f.matches(&msg(85.0, 1)));
        assert!(!f.matches(&msg(80.0, 1)));
        assert!(!f.matches(&msg(12.0, 1)));
        assert_eq!(f.to_string(), "f0 > 80");
    }

    #[test]
    fn conjunction_short_circuits() {
        let f = Filter::new(
            &schema(),
            vec![
                Predicate { field: 0, op: Cmp::Gt, constant: Value::Float(80.0) },
                Predicate { field: 1, op: Cmp::Le, constant: Value::Int(5) },
            ],
        );
        // First predicate fails: only 1 evaluated.
        assert_eq!(f.evaluate_counting(&msg(10.0, 1)), (false, 1));
        // First passes, second fails: 2 evaluated.
        assert_eq!(f.evaluate_counting(&msg(90.0, 9)), (false, 2));
        // Both pass.
        assert_eq!(f.evaluate_counting(&msg(90.0, 3)), (true, 2));
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::all();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(f.matches(&msg(1.0, 1)));
        assert_eq!(f.to_string(), "TRUE");
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn filter_rejects_bad_field() {
        let _ = Filter::new(
            &schema(),
            vec![Predicate { field: 9, op: Cmp::Eq, constant: Value::Int(1) }],
        );
    }

    #[test]
    #[should_panic(expected = "constant type mismatch")]
    fn filter_rejects_bad_type() {
        let _ = Filter::new(
            &schema(),
            vec![Predicate { field: 0, op: Cmp::Eq, constant: Value::Int(1) }],
        );
    }

    #[test]
    fn incomparable_types_never_match() {
        // Build a predicate directly (bypassing validation) to simulate a
        // malformed subscription arriving over the wire.
        let p = Predicate { field: 0, op: Cmp::Ne, constant: Value::Int(1) };
        assert!(!p.matches(&msg(5.0, 1)));
    }

    #[test]
    fn generated_filters_are_well_typed_and_deterministic() {
        let s = schema();
        let gen = FilterGen::default();
        let a: Vec<Filter> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| gen.generate(&s, &mut rng)).collect()
        };
        let b: Vec<Filter> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| gen.generate(&s, &mut rng)).collect()
        };
        assert_eq!(a, b);
        let mut rng = StdRng::seed_from_u64(6);
        let m = s.generate(&mut rng);
        for f in &a {
            assert!((1..=3).contains(&f.len()));
            let _ = f.matches(&m); // must not panic
        }
    }

    #[test]
    fn selectivity_responds_to_predicate_count() {
        // More predicates ⇒ fewer matches, statistically.
        let s = schema();
        let mut rng = StdRng::seed_from_u64(7);
        let msgs: Vec<Message> = (0..500).map(|_| s.generate(&mut rng)).collect();
        let count_matches = |gen: FilterGen, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let filters: Vec<Filter> = (0..50).map(|_| gen.generate(&s, &mut rng)).collect();
            msgs.iter()
                .map(|m| filters.iter().filter(|f| f.matches(m)).count())
                .sum::<usize>()
        };
        let loose = count_matches(FilterGen { predicates: (1, 1), ..Default::default() }, 8);
        let tight = count_matches(FilterGen { predicates: (3, 3), ..Default::default() }, 8);
        assert!(loose > tight, "1-predicate {loose} vs 3-predicate {tight}");
    }
}
