//! Cost calibration: from matcher work to the optimizer's resource model.
//!
//! The paper's resource coefficients (`F = 3`, `G = 19`, §4.1) "were
//! measured on the Gryphon publish/subscribe system". This module performs
//! the same exercise against this crate's own matching engines: drive a
//! broker with synthetic traffic at increasing subscription counts, record
//! the matching work per message, and fit the linear model
//!
//! ```text
//! work/message ≈ F̂ + Ĝ · consumers
//! ```
//!
//! whose coefficients slot directly into a [`lrgp_model::Problem`] as the
//! flow-node and consumer-node costs.

use crate::filter::FilterGen;
use crate::matcher::Matcher;
use crate::message::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Calibration parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Messages matched per probe point.
    pub messages: usize,
    /// Subscription counts probed (the regression's x-axis). Must contain
    /// at least two distinct values.
    pub consumer_counts: Vec<usize>,
    /// Filter generator for synthetic subscriptions.
    pub filters: FilterGen,
    /// RNG seed.
    pub seed: u64,
    /// Fixed per-message routing overhead added on top of matching work
    /// (parsing, enqueueing — work the matcher does not see).
    pub routing_overhead: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            messages: 500,
            consumer_counts: vec![0, 50, 100, 200, 400, 800],
            filters: FilterGen::default(),
            seed: 0,
            routing_overhead: 3.0,
        }
    }
}

/// Fitted cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Consumer-independent cost per message (the `F_{b,i}` analogue),
    /// including the configured routing overhead.
    pub per_message: f64,
    /// Marginal cost per consumer per message (the `G_{b,j}` analogue).
    pub per_consumer_message: f64,
    /// Coefficient of determination of the linear fit.
    pub r_squared: f64,
    /// The raw probe points `(consumers, mean work per message)`.
    pub samples: Vec<(usize, f64)>,
}

/// Runs the calibration against a matcher built by `build` from a
/// subscription set.
///
/// Work is measured in deterministic *work units* (predicate evaluations /
/// index operations), so calibration results are bit-reproducible per seed
/// — unlike wall-clock timing, which the paper's authors necessarily used.
///
/// # Panics
///
/// Panics if fewer than two distinct consumer counts are supplied.
pub fn calibrate<M, B>(schema: &Arc<Schema>, build: B, config: &CalibrationConfig) -> CostEstimate
where
    M: Matcher,
    B: Fn(Vec<crate::filter::Filter>) -> M,
{
    let distinct: std::collections::BTreeSet<_> = config.consumer_counts.iter().collect();
    assert!(distinct.len() >= 2, "need at least two distinct consumer counts");

    let mut samples = Vec::with_capacity(config.consumer_counts.len());
    for &n in &config.consumer_counts {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(n as u64));
        let filters = (0..n).map(|_| config.filters.generate(schema, &mut rng)).collect();
        let matcher = build(filters);
        let mut total_work = 0u64;
        for _ in 0..config.messages {
            let message = schema.generate(&mut rng);
            total_work += matcher.match_message(&message).work;
        }
        samples.push((n, total_work as f64 / config.messages as f64));
    }

    // Ordinary least squares on (n, work).
    let k = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(n, _)| *n as f64).sum();
    let sy: f64 = samples.iter().map(|(_, w)| *w).sum();
    let sxx: f64 = samples.iter().map(|(n, _)| (*n as f64).powi(2)).sum();
    let sxy: f64 = samples.iter().map(|(n, w)| *n as f64 * w).sum();
    let denom = k * sxx - sx * sx;
    let slope = (k * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / k;
    let mean_y = sy / k;
    let ss_tot: f64 = samples.iter().map(|(_, w)| (w - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|(n, w)| (w - (intercept + slope * *n as f64)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };

    CostEstimate {
        per_message: intercept.max(0.0) + config.routing_overhead,
        per_consumer_message: slope.max(f64::MIN_POSITIVE),
        r_squared,
        samples,
    }
}

/// Builds a single-broker optimization problem from a calibrated cost
/// model: `flows` flows into one broker of capacity `capacity`, each with
/// `classes_per_flow` classes of the given ranks and demand.
///
/// This is the paper's pipeline in miniature: measure the middleware,
/// plug the coefficients into the model, optimize.
#[must_use = "this Result reports a failure the caller must handle"]
pub fn problem_from_calibration(
    estimate: &CostEstimate,
    flows: usize,
    classes_per_flow: usize,
    max_population: u32,
    capacity: f64,
    rate_bounds: (f64, f64),
) -> Result<lrgp_model::Problem, lrgp_model::ValidationError> {
    use lrgp_model::{ProblemBuilder, RateBounds, Utility};
    let mut b = ProblemBuilder::new();
    let broker = b.add_labeled_node(capacity, "calibrated-broker");
    let bounds = RateBounds::new(rate_bounds.0, rate_bounds.1)?;
    for f in 0..flows {
        let src = b.add_labeled_node(capacity, format!("src{f}"));
        let flow = b.add_flow(src, bounds);
        b.set_node_cost(flow, broker, estimate.per_message);
        for k in 0..classes_per_flow {
            b.add_class(
                flow,
                broker,
                max_population,
                Utility::log(10.0 * (k + 1) as f64),
                estimate.per_consumer_message,
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{IndexMatcher, NaiveMatcher};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::trade_data())
    }

    #[test]
    fn naive_calibration_fits_a_clean_line() {
        let s = schema();
        let cfg = CalibrationConfig::default();
        let est = calibrate(&s, naive_from, &cfg);
        // Naive work is exactly linear in subscriptions (≈ mean predicates
        // evaluated per sub), so the fit must be excellent.
        assert!(est.r_squared > 0.999, "r² = {}", est.r_squared);
        assert!(est.per_consumer_message > 0.5 && est.per_consumer_message < 4.0);
        assert!(est.per_message >= cfg.routing_overhead);
        assert_eq!(est.samples.len(), cfg.consumer_counts.len());
    }

    fn naive_from(filters: Vec<crate::filter::Filter>) -> NaiveMatcher {
        let mut m = NaiveMatcher::new();
        for f in filters {
            m.subscribe(f);
        }
        m
    }

    #[test]
    fn index_matcher_calibrates_cheaper_than_naive() {
        let s = schema();
        let cfg = CalibrationConfig::default();
        let naive = calibrate(&s, naive_from, &cfg);
        let index = calibrate(&s, IndexMatcher::from_filters, &cfg);
        assert!(
            index.per_consumer_message < naive.per_consumer_message,
            "index Ĝ {} should undercut naive Ĝ {}",
            index.per_consumer_message,
            naive.per_consumer_message
        );
    }

    #[test]
    fn calibration_deterministic_per_seed() {
        let s = schema();
        let cfg = CalibrationConfig::default();
        let a = calibrate(&s, naive_from, &cfg);
        let b = calibrate(&s, naive_from, &cfg);
        assert_eq!(a, b);
        let c = calibrate(
            &s,
            naive_from,
            &CalibrationConfig { seed: 99, ..cfg },
        );
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn calibrated_problem_is_valid_and_optimizable() {
        let s = schema();
        let est = calibrate(&s, naive_from, &CalibrationConfig::default());
        let p = problem_from_calibration(&est, 3, 2, 500, 1e5, (10.0, 1000.0)).unwrap();
        assert_eq!(p.num_flows(), 3);
        assert_eq!(p.num_classes(), 6);
        // And LRGP can run on it.
        let mut e = lrgp::Engine::new(p.clone(), lrgp::LrgpConfig::default());
        let out = e.run_until_converged(400);
        assert!(out.utility > 0.0);
        assert!(e.allocation().is_feasible(&p, 1e-6));
    }

    #[test]
    #[should_panic(expected = "two distinct consumer counts")]
    fn rejects_degenerate_probe_set() {
        let s = schema();
        let cfg = CalibrationConfig { consumer_counts: vec![100, 100], ..Default::default() };
        let _ = calibrate(&s, naive_from, &cfg);
    }
}
