//! Regression test for the HashMap → BTreeMap conversion flagged by
//! `lrgp-lint` (`hash-order-iteration`): the index matcher's results must
//! be a function of the subscription *set*, not the order subscriptions
//! were inserted in (modulo the id permutation insertion order defines).

use lrgp_pubsub::filter::{Cmp, Filter, Predicate};
use lrgp_pubsub::matcher::{IndexMatcher, Matcher};
use lrgp_pubsub::message::{Field, FieldType, Message, Schema, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field { name: "a".into(), field_type: FieldType::Int, range: (0.0, 20.0) },
        Field { name: "b".into(), field_type: FieldType::Float, range: (0.0, 10.0) },
        Field { name: "c".into(), field_type: FieldType::Text, range: (0.0, 4.0) },
        Field { name: "d".into(), field_type: FieldType::Bool, range: (0.0, 1.0) },
    ]))
}

fn filters(schema: &Schema) -> Vec<Filter> {
    let p = |field, op, constant| Predicate { field, op, constant };
    vec![
        Filter::new(schema, vec![p(0, Cmp::Eq, Value::Int(3))]),
        Filter::new(schema, vec![p(0, Cmp::Eq, Value::Int(3)), p(3, Cmp::Eq, Value::Bool(true))]),
        Filter::new(schema, vec![p(1, Cmp::Lt, Value::Float(5.0))]),
        Filter::new(schema, vec![p(1, Cmp::Ge, Value::Float(2.5)), p(2, Cmp::Eq, Value::Text("v1".into()))]),
        Filter::new(schema, vec![p(2, Cmp::Ne, Value::Text("v0".into()))]),
        Filter::new(schema, vec![]), // match-all
        Filter::new(schema, vec![p(0, Cmp::Gt, Value::Int(10)), p(1, Cmp::Le, Value::Float(9.0))]),
        Filter::new(schema, vec![p(3, Cmp::Eq, Value::Bool(false)), p(0, Cmp::Le, Value::Int(7))]),
    ]
}

fn messages() -> Vec<Message> {
    let mut out = Vec::new();
    for a in [0i64, 3, 7, 11, 20] {
        for (b, c, d) in [(1.0, "v0", true), (2.5, "v1", false), (8.5, "v3", true)] {
            out.push(Message::new(
                schema(),
                vec![Value::Int(a), Value::Float(b), Value::Text(c.into()), Value::Bool(d)],
            ));
        }
    }
    out
}

#[test]
fn index_matcher_results_are_insertion_order_independent() {
    let schema = schema();
    let set = filters(&schema);
    let n = set.len();

    let mut forward = IndexMatcher::new();
    for f in &set {
        forward.subscribe(f.clone());
    }
    // Reverse insertion order: subscription id `i` now holds the filter
    // that id `n - 1 - i` holds in `forward`.
    let mut reverse = IndexMatcher::new();
    for f in set.iter().rev() {
        reverse.subscribe(f.clone());
    }

    for msg in messages() {
        let fwd = forward.match_message(&msg);
        let rev = reverse.match_message(&msg);
        let fwd_set: BTreeSet<usize> = fwd.matches.iter().copied().collect();
        let rev_set: BTreeSet<usize> = rev.matches.iter().copied().map(|id| n - 1 - id).collect();
        assert_eq!(fwd_set, rev_set, "matched filter sets diverged");
        // The counting algorithm touches the same predicates either way.
        assert_eq!(fwd.work, rev.work, "work accounting diverged");
    }
}
