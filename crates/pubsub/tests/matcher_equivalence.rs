//! Property-based equivalence of the two matching engines on arbitrary
//! well-typed subscriptions and messages.

use lrgp_pubsub::filter::{Cmp, Filter, Predicate};
use lrgp_pubsub::matcher::{IndexMatcher, Matcher, NaiveMatcher};
use lrgp_pubsub::message::{Field, FieldType, Message, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field { name: "a".into(), field_type: FieldType::Int, range: (0.0, 20.0) },
        Field { name: "b".into(), field_type: FieldType::Float, range: (0.0, 10.0) },
        Field { name: "c".into(), field_type: FieldType::Text, range: (0.0, 4.0) },
        Field { name: "d".into(), field_type: FieldType::Bool, range: (0.0, 1.0) },
    ]))
}

fn op_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Ge),
        Just(Cmp::Gt),
    ]
}

/// A well-typed predicate over the fixed schema.
fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    (0usize..4, op_strategy(), 0i64..=20, 0.0f64..10.0, 0u32..4, any::<bool>()).prop_map(
        |(field, op, int_v, float_v, text_v, bool_v)| {
            let constant = match field {
                0 => Value::Int(int_v),
                1 => Value::Float(float_v),
                2 => Value::Text(format!("v{text_v}")),
                _ => Value::Bool(bool_v),
            };
            // Text/Bool only support Eq/Ne in the generator's contract, but
            // the engines must agree on *any* well-typed input, so keep the
            // raw op (ordered comparisons on text are legal: lexicographic).
            Predicate { field, op, constant }
        },
    )
}

fn message_strategy() -> impl Strategy<Value = Message> {
    (0i64..=20, 0.0f64..10.0, 0u32..4, any::<bool>()).prop_map(|(a, b, c, d)| {
        Message::new(
            schema(),
            vec![Value::Int(a), Value::Float(b), Value::Text(format!("v{c}")), Value::Bool(d)],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn index_and_naive_agree(
        filters in proptest::collection::vec(
            proptest::collection::vec(predicate_strategy(), 0..5),
            0..40
        ),
        messages in proptest::collection::vec(message_strategy(), 1..10),
    ) {
        let s = schema();
        let filters: Vec<Filter> =
            filters.into_iter().map(|ps| Filter::new(&s, ps)).collect();
        let mut naive = NaiveMatcher::new();
        for f in filters.clone() {
            naive.subscribe(f);
        }
        let index = IndexMatcher::from_filters(filters);
        prop_assert_eq!(naive.len(), index.len());
        for m in &messages {
            let a = naive.match_message(m);
            let b = index.match_message(m);
            prop_assert_eq!(&a.matches, &b.matches, "engines diverged");
        }
    }

    /// Matching is stable: the same message matched twice gives identical
    /// results (no hidden state).
    #[test]
    fn matching_is_pure(
        preds in proptest::collection::vec(predicate_strategy(), 0..6),
        message in message_strategy(),
    ) {
        let s = schema();
        let index = IndexMatcher::from_filters([Filter::new(&s, preds)]);
        let a = index.match_message(&message);
        let b = index.match_message(&message);
        prop_assert_eq!(a, b);
    }
}
