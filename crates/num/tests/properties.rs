//! Property-based tests for the numeric substrate.

use lrgp_num::roots::{bisect_decreasing, newton_safeguarded};
use lrgp_num::series::{ConvergenceCriterion, TimeSeries};
use lrgp_num::stats::Summary;
use proptest::prelude::*;

proptest! {
    /// Bisection on a decreasing affine function recovers the exact root
    /// (or clamps correctly when the root is outside the interval).
    #[test]
    fn bisection_solves_affine(
        slope in 0.01f64..100.0,
        root in -1000.0f64..1000.0,
        lo in -1000.0f64..0.0,
        width in 1.0f64..2000.0,
    ) {
        let hi = lo + width;
        let f = |x: f64| slope * (root - x); // decreasing, zero at `root`
        let found = bisect_decreasing(f, lo, hi, 1e-12, 500).unwrap();
        let expected = root.clamp(lo, hi);
        prop_assert!((found - expected).abs() < 1e-6 * expected.abs().max(1.0),
            "found {found}, expected {expected}");
    }

    /// Newton with safeguards agrees with bisection on a family of smooth
    /// decreasing functions.
    #[test]
    fn newton_agrees_with_bisection(
        s in 1.0f64..1e6,
        p in 1e-6f64..1e3,
        hi in 10.0f64..10_000.0,
    ) {
        // f(r) = s/(1+r) − p, the log-utility stationarity condition.
        let f = |r: f64| s / (1.0 + r) - p;
        let df = |r: f64| -s / (1.0 + r).powi(2);
        let a = bisect_decreasing(f, 0.0, hi, 1e-12, 500).unwrap();
        let b = newton_safeguarded(f, df, 0.0, hi, 1e-12, 500).unwrap();
        prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "bisect {a} vs newton {b}");
    }

    /// Summary::merge is equivalent to streaming the concatenation, for any
    /// split point.
    #[test]
    fn summary_merge_associative(
        data in proptest::collection::vec(-1e6f64..1e6, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(data.len());
        let mut left: Summary = data[..split].iter().copied().collect();
        let right: Summary = data[split..].iter().copied().collect();
        left.merge(&right);
        let whole: Summary = data.iter().copied().collect();
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!(
            (left.population_variance() - whole.population_variance()).abs()
                <= 1e-4 * whole.population_variance().abs().max(1.0)
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// A series scaled to sit within ±ε of a constant converges under any
    /// criterion looser than 2ε/c; one with a persistent large swing does
    /// not.
    #[test]
    fn convergence_criterion_scale_invariance(
        base in 1.0f64..1e9,
        n in 10usize..60,
    ) {
        let quiet: TimeSeries = {
            let mut t = TimeSeries::new("q");
            for i in 0..n {
                // ±0.01 % wiggle.
                t.push(base * (1.0 + 1e-4 * if i % 2 == 0 { 1.0 } else { -1.0 }));
            }
            t
        };
        let crit = ConvergenceCriterion { window: 10, relative_amplitude: 1e-3 };
        prop_assert!(crit.is_met(&quiet));
        let noisy: TimeSeries = {
            let mut t = TimeSeries::new("n");
            for i in 0..n {
                t.push(base * (1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 }));
            }
            t
        };
        prop_assert!(!crit.is_met(&noisy));
    }

    /// first_convergence never reports later than convergence_iteration
    /// reports quietness (when both report).
    #[test]
    fn first_convergence_is_no_later_than_suffix_measure(
        vals in proptest::collection::vec(1.0f64..1000.0, 12..80),
    ) {
        let ts: TimeSeries = {
            let mut t = TimeSeries::new("t");
            for v in &vals {
                t.push(*v);
            }
            t
        };
        let crit = ConvergenceCriterion { window: 10, relative_amplitude: 0.05 };
        if let (Some(first), Some(suffix)) =
            (ts.first_convergence(&crit), ts.convergence_iteration(&crit))
        {
            // first_convergence counts samples (window end); the suffix
            // measure reports the window start of the final quiet stretch.
            prop_assert!(first <= suffix + crit.window);
        }
    }
}
