//! Summary statistics and smoothing.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics (count, mean, variance, extrema) using
/// Welford's online algorithm.
///
/// # Examples
///
/// ```
/// use lrgp_num::stats::Summary;
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`), or 0 when fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or 0 when fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Range `max - min`, or `None` when empty.
    pub fn range(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max - self.min)
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
///
/// Used by the asynchronous protocol to smooth stale price and rate signals
/// (the paper suggests averaging "over the last few prices from a
/// resource"; an EWMA is the streaming analogue).
///
/// # Examples
///
/// ```
/// use lrgp_num::stats::Ewma;
/// let mut e = Ewma::new(0.5);
/// assert_eq!(e.observe(10.0), 10.0); // first sample seeds the average
/// assert_eq!(e.observe(0.0), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds a sample and returns the updated average. The first sample
    /// seeds the average directly.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` before any sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Resets to the pre-first-sample state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.range(), None);
        assert_eq!(Summary::default(), s);
    }

    #[test]
    fn summary_single_sample() {
        let s: Summary = [3.5].iter().copied().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.range(), Some(0.0));
    }

    #[test]
    fn summary_welford_matches_direct_computation() {
        let data = [1.0, 2.5, -3.0, 7.2, 0.0, 4.4];
        let s: Summary = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_combined_stream() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a: Summary = a_data.iter().copied().collect();
        let b: Summary = b_data.iter().copied().collect();
        a.merge(&b);
        let all: Summary = a_data.iter().chain(b_data.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summary_extend() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.25);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(8.0), 8.0);
        let v = e.observe(0.0);
        assert!((v - 6.0).abs() < 1e-12);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    fn ewma_alpha_one_tracks_input() {
        let mut e = Ewma::new(1.0);
        e.observe(5.0);
        assert_eq!(e.observe(9.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
