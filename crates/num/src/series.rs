//! Time-series recording and analysis.
//!
//! LRGP iterates indefinitely; the paper's experiments observe the *trace* of
//! total utility across iterations and declare convergence "when the
//! amplitude of the oscillations in utility becomes less than 0.1 % of the
//! value of the utility" (§4.3). The adaptive-γ heuristic likewise watches a
//! node's price trace for fluctuations. This module provides those building
//! blocks.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An append-only sequence of samples indexed by iteration.
///
/// Used to record utility, rate, and price traces produced by the engine.
///
/// # Examples
///
/// ```
/// use lrgp_num::series::TimeSeries;
/// let mut ts = TimeSeries::new("utility");
/// ts.push(10.0);
/// ts.push(12.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last(), Some(12.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), values: Vec::new() }
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// All samples, in iteration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Samples in the half-open index range `[start, end)`, clamped to the
    /// available data.
    pub fn window(&self, start: usize, end: usize) -> &[f64] {
        let end = end.min(self.values.len());
        let start = start.min(end);
        &self.values[start..end]
    }

    /// Relative oscillation amplitude `(max - min) / |mean|` over the last
    /// `window` samples, or `None` if fewer than `window` samples exist or
    /// the mean is zero.
    pub fn relative_amplitude(&self, window: usize) -> Option<f64> {
        if window == 0 || self.values.len() < window {
            return None;
        }
        let tail = &self.values[self.values.len() - window..];
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in tail {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / window as f64;
        if mean == 0.0 {
            return None;
        }
        Some((max - min) / mean.abs())
    }

    /// First iteration (1-based count of samples seen) at which the
    /// trailing window satisfies `criterion` — the measurement
    /// `run_until_converged` makes online. Unlike
    /// [`TimeSeries::convergence_iteration`], a later flare-up does not
    /// retract the answer.
    pub fn first_convergence(&self, criterion: &ConvergenceCriterion) -> Option<usize> {
        let w = criterion.window;
        if w == 0 || self.values.len() < w {
            return None;
        }
        (w..=self.values.len()).find(|&end| {
            let slice = &self.values[end - w..end];
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for &v in slice {
                min = min.min(v);
                max = max.max(v);
                sum += v;
            }
            let mean = sum / w as f64;
            mean != 0.0 && (max - min) / mean.abs() <= criterion.relative_amplitude
        })
    }

    /// Index of the first iteration at which the series has *converged*
    /// according to `criterion`, replaying the trace from the beginning.
    ///
    /// This mirrors how the paper reports "iterations until convergence":
    /// the first iteration after which the relative amplitude over the
    /// trailing window stays below the threshold for the remainder of the
    /// recorded trace... more precisely, we report the first index `t` such
    /// that every window ending in `(t, len]` satisfies the criterion; this
    /// avoids declaring convergence during a transient lull.
    pub fn convergence_iteration(&self, criterion: &ConvergenceCriterion) -> Option<usize> {
        let w = criterion.window;
        if self.values.len() < w {
            return None;
        }
        // Walk backwards: find the longest suffix in which every trailing
        // window satisfies the criterion.
        let mut first_ok_end = None;
        for end in (w..=self.values.len()).rev() {
            let slice = &self.values[end - w..end];
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for &v in slice {
                min = min.min(v);
                max = max.max(v);
                sum += v;
            }
            let mean = sum / w as f64;
            let ok = mean != 0.0 && (max - min) / mean.abs() <= criterion.relative_amplitude;
            if ok {
                first_ok_end = Some(end);
            } else {
                break;
            }
        }
        // Convergence is attained at the *start* of the earliest all-quiet
        // window, i.e. the iteration after which oscillation stays bounded.
        first_ok_end.map(|end| end - w)
    }
}

/// The paper's convergence test: relative oscillation amplitude of the
/// utility over a trailing window falls below a threshold (0.1 % in §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCriterion {
    /// Number of trailing samples over which the amplitude is measured.
    pub window: usize,
    /// Maximum allowed `(max - min) / |mean|` over the window.
    pub relative_amplitude: f64,
}

impl ConvergenceCriterion {
    /// The criterion used throughout the paper: amplitude below 0.1 % over a
    /// 10-iteration window.
    pub fn paper_default() -> Self {
        Self { window: 10, relative_amplitude: 1e-3 }
    }

    /// Tests the criterion against the tail of `series`.
    pub fn is_met(&self, series: &TimeSeries) -> bool {
        series
            .relative_amplitude(self.window)
            .map(|a| a <= self.relative_amplitude)
            .unwrap_or(false)
    }
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Fixed-capacity sliding window over a scalar signal.
///
/// # Examples
///
/// ```
/// use lrgp_num::series::SlidingWindow;
/// let mut w = SlidingWindow::new(3);
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     w.push(v);
/// }
/// assert_eq!(w.as_slice(), &[2.0, 3.0, 4.0]);
/// assert_eq!(w.min(), Some(2.0));
/// assert_eq!(w.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    capacity: usize,
    buf: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        Self { capacity, buf: VecDeque::with_capacity(capacity) }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, value: f64) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    /// `true` once `capacity` samples have been observed.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Smallest held sample.
    pub fn min(&self) -> Option<f64> {
        self.buf.iter().copied().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Largest held sample.
    pub fn max(&self) -> Option<f64> {
        self.buf.iter().copied().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of the held samples.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }

    /// Contents in arrival order (oldest first).
    pub fn as_slice(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }
}

/// Detects oscillation in a scalar signal by watching for sign flips in its
/// successive differences.
///
/// The adaptive-γ heuristic (§4.2) increases γ "as long as the price does not
/// fluctuate" and halves it "when fluctuations are detected". We call the
/// signal *fluctuating* when the last two nonzero deltas have opposite signs
/// (the signal turned around), which is the standard zig-zag test for
/// gradient-style updates.
///
/// # Examples
///
/// ```
/// use lrgp_num::series::FluctuationDetector;
/// let mut d = FluctuationDetector::new(0.0);
/// assert!(!d.observe(1.0)); // rising
/// assert!(!d.observe(2.0)); // still rising
/// assert!(d.observe(1.5)); // turned around => fluctuation
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluctuationDetector {
    last_value: f64,
    last_delta_sign: i8,
    tolerance: f64,
}

impl FluctuationDetector {
    /// Creates a detector primed with the signal's initial value and zero
    /// tolerance (any turn-around counts as a fluctuation).
    pub fn new(initial: f64) -> Self {
        Self::with_tolerance(initial, 0.0)
    }

    /// Creates a detector that ignores deltas whose magnitude is at most
    /// `tolerance` (useful for noisy signals near a fixed point).
    pub fn with_tolerance(initial: f64, tolerance: f64) -> Self {
        Self { last_value: initial, last_delta_sign: 0, tolerance }
    }

    /// Feeds the next sample; returns `true` if a fluctuation (sign flip in
    /// the successive differences) is detected at this step.
    pub fn observe(&mut self, value: f64) -> bool {
        let delta = value - self.last_value;
        self.last_value = value;
        if delta.abs() <= self.tolerance {
            // Treat as flat: not a fluctuation, and it does not update the
            // remembered direction.
            return false;
        }
        let sign: i8 = if delta > 0.0 { 1 } else { -1 };
        let fluctuated = self.last_delta_sign != 0 && sign != self.last_delta_sign;
        self.last_delta_sign = sign;
        fluctuated
    }

    /// The most recently observed value.
    pub fn last_value(&self) -> f64 {
        self.last_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_of(values: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new("t");
        for &v in values {
            ts.push(v);
        }
        ts
    }

    #[test]
    fn time_series_basics() {
        let ts = series_of(&[1.0, 2.0, 3.0]);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.last(), Some(3.0));
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(ts.window(1, 10), &[2.0, 3.0]);
        assert_eq!(ts.window(5, 2), &[] as &[f64]);
    }

    #[test]
    fn relative_amplitude_over_window() {
        let ts = series_of(&[100.0, 101.0, 99.0, 100.0]);
        let amp = ts.relative_amplitude(4).unwrap();
        assert!((amp - 2.0 / 100.0).abs() < 1e-12);
        assert_eq!(ts.relative_amplitude(5), None);
        assert_eq!(ts.relative_amplitude(0), None);
    }

    #[test]
    fn relative_amplitude_zero_mean_is_none() {
        let ts = series_of(&[1.0, -1.0]);
        assert_eq!(ts.relative_amplitude(2), None);
    }

    #[test]
    fn convergence_detects_quiet_suffix() {
        // Noisy for 10 samples, then flat at 100.
        let mut vals = vec![50.0, 150.0, 60.0, 140.0, 70.0, 130.0, 80.0, 120.0, 90.0, 110.0];
        vals.extend(std::iter::repeat_n(100.0, 20));
        let ts = series_of(&vals);
        let crit = ConvergenceCriterion { window: 5, relative_amplitude: 1e-3 };
        let it = ts.convergence_iteration(&crit).unwrap();
        // The earliest all-quiet window starts at index 10.
        assert_eq!(it, 10);
    }

    #[test]
    fn first_convergence_is_online_measurement() {
        // Quiet early, flares later: first_convergence reports the early
        // quiet point; convergence_iteration does not.
        let mut vals = vec![100.0; 10];
        vals.extend([10.0, 200.0, 10.0, 200.0]);
        let ts = series_of(&vals);
        let crit = ConvergenceCriterion { window: 4, relative_amplitude: 1e-3 };
        assert_eq!(ts.first_convergence(&crit), Some(4));
        assert_eq!(ts.convergence_iteration(&crit), None);
        // Too-short series.
        let short = series_of(&[1.0, 1.0]);
        assert_eq!(short.first_convergence(&crit), None);
    }

    #[test]
    fn convergence_none_when_always_noisy() {
        let ts = series_of(&[1.0, 100.0, 1.0, 100.0, 1.0, 100.0, 1.0, 100.0]);
        let crit = ConvergenceCriterion { window: 4, relative_amplitude: 1e-3 };
        assert_eq!(ts.convergence_iteration(&crit), None);
    }

    #[test]
    fn convergence_ignores_transient_lull() {
        // Quiet in the middle, noisy at the end: must not converge early.
        let mut vals = vec![100.0; 10];
        vals.extend([10.0, 200.0, 10.0, 200.0]);
        let ts = series_of(&vals);
        let crit = ConvergenceCriterion { window: 4, relative_amplitude: 1e-3 };
        assert_eq!(ts.convergence_iteration(&crit), None);
    }

    #[test]
    fn criterion_is_met_on_tail() {
        let crit = ConvergenceCriterion { window: 3, relative_amplitude: 0.05 };
        let ts = series_of(&[5.0, 100.0, 100.1, 99.9]);
        assert!(crit.is_met(&ts));
        let noisy = series_of(&[5.0, 100.0, 50.0, 150.0]);
        assert!(!crit.is_met(&noisy));
    }

    #[test]
    fn paper_default_criterion() {
        let c = ConvergenceCriterion::paper_default();
        assert_eq!(c.window, 10);
        assert_eq!(c.relative_amplitude, 1e-3);
        assert_eq!(ConvergenceCriterion::default(), c);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(2);
        assert!(w.is_empty());
        w.push(1.0);
        w.push(2.0);
        assert!(w.is_full());
        w.push(3.0);
        assert_eq!(w.as_slice(), vec![2.0, 3.0]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(3.0));
        assert_eq!(w.mean(), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn sliding_window_rejects_zero_capacity() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn fluctuation_monotone_signals_are_quiet() {
        let mut d = FluctuationDetector::new(0.0);
        assert!(!d.observe(1.0));
        assert!(!d.observe(2.0));
        assert!(!d.observe(3.0));
        assert_eq!(d.last_value(), 3.0);
    }

    #[test]
    fn fluctuation_detects_turnaround_both_ways() {
        let mut d = FluctuationDetector::new(0.0);
        assert!(!d.observe(2.0));
        assert!(d.observe(1.0)); // up then down
        assert!(d.observe(3.0)); // down then up
    }

    #[test]
    fn fluctuation_tolerance_suppresses_noise() {
        let mut d = FluctuationDetector::with_tolerance(0.0, 0.1);
        assert!(!d.observe(1.0));
        assert!(!d.observe(0.95)); // tiny dip, within tolerance
        assert!(!d.observe(1.9)); // resumes rising
        assert!(d.observe(0.5)); // real turnaround
    }

    #[test]
    fn fluctuation_flat_signal_never_fluctuates() {
        let mut d = FluctuationDetector::new(5.0);
        for _ in 0..10 {
            assert!(!d.observe(5.0));
        }
    }
}
