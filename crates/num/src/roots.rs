//! Safeguarded scalar root finding.
//!
//! The rate-allocation subproblem of LRGP maximizes a strictly concave,
//! differentiable objective `Φ(r)` over a closed interval. Its derivative
//! `Φ'(r)` is therefore strictly decreasing, so the maximizer is either a
//! boundary point or the unique root of `Φ'`. The solvers here exploit that
//! monotone structure: they never require derivatives of the input function
//! itself and always converge on a valid bracket.

use std::fmt;

/// Error returned by the root finders in this module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RootError {
    /// The supplied interval is empty or reversed (`lo > hi`), or a bound is
    /// not finite.
    InvalidInterval {
        /// Lower bound supplied by the caller.
        lo: f64,
        /// Upper bound supplied by the caller.
        hi: f64,
    },
    /// The function does not change sign over the interval, so no root is
    /// bracketed. The payload carries the endpoint values.
    NotBracketed {
        /// `f(lo)`.
        f_lo: f64,
        /// `f(hi)`.
        f_hi: f64,
    },
    /// The function returned a non-finite value during iteration.
    NonFinite {
        /// Point at which the function evaluated to a non-finite value.
        at: f64,
    },
    /// The iteration budget was exhausted before the tolerance was met. The
    /// payload is the best estimate found.
    IterationLimit {
        /// Best root estimate at the time the budget ran out.
        best: f64,
    },
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval [{lo}, {hi}]")
            }
            RootError::NotBracketed { f_lo, f_hi } => {
                write!(f, "root not bracketed: f(lo) = {f_lo}, f(hi) = {f_hi}")
            }
            RootError::NonFinite { at } => write!(f, "non-finite function value at {at}"),
            RootError::IterationLimit { best } => {
                write!(f, "iteration limit reached, best estimate {best}")
            }
        }
    }
}

impl std::error::Error for RootError {}

/// Finds the root of a *strictly decreasing* function `f` on `[lo, hi]` by
/// bisection.
///
/// Returns:
/// * `Ok(lo)` if `f(lo) <= 0` (the function is already non-positive at the
///   left edge, so the root — if any — lies at or below `lo`),
/// * `Ok(hi)` if `f(hi) >= 0` (still non-negative at the right edge),
/// * otherwise the bracketed root to absolute tolerance `tol` on the
///   argument.
///
/// This clamping behaviour matches how a concave maximizer uses the
/// derivative: if `Φ'` is non-positive everywhere the maximum is at `lo`; if
/// non-negative everywhere it is at `hi`.
///
/// # Errors
///
/// * [`RootError::InvalidInterval`] if `lo > hi` or either bound is not
///   finite.
/// * [`RootError::NonFinite`] if `f` produces a NaN/∞ at an endpoint or an
///   interior probe.
/// * [`RootError::IterationLimit`] if `max_iter` bisections do not reach
///   `tol` (the payload still carries the midpoint estimate).
///
/// # Examples
///
/// ```
/// use lrgp_num::roots::bisect_decreasing;
/// let root = bisect_decreasing(|x| 4.0 - x, 0.0, 10.0, 1e-10, 100).unwrap();
/// assert!((root - 4.0).abs() < 1e-9);
/// ```
#[must_use = "this Result reports a failure the caller must handle"]
pub fn bisect_decreasing<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(RootError::InvalidInterval { lo, hi });
    }
    let f_lo = f(lo);
    if !f_lo.is_finite() {
        return Err(RootError::NonFinite { at: lo });
    }
    if f_lo <= 0.0 {
        return Ok(lo);
    }
    let f_hi = f(hi);
    if !f_hi.is_finite() {
        return Err(RootError::NonFinite { at: hi });
    }
    if f_hi >= 0.0 {
        return Ok(hi);
    }
    let (mut a, mut b) = (lo, hi);
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        // Stop on tolerance, or when the midpoint cannot make progress
        // because the interval width is below the floating-point spacing
        // at this magnitude (an absolute `tol` below one ULP would
        // otherwise stall forever).
        if (b - a) <= tol || mid <= a || mid >= b {
            return Ok(mid);
        }
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(RootError::NonFinite { at: mid });
        }
        if fm > 0.0 {
            a = mid;
        } else {
            b = mid;
        }
    }
    Err(RootError::IterationLimit { best: 0.5 * (a + b) })
}

/// Newton's method with a bisection safeguard on a *strictly decreasing*
/// function `f` with derivative `df`, over the bracket `[lo, hi]`.
///
/// Newton steps that would leave the current bracket, or for which the
/// derivative is ill-conditioned, fall back to bisection, so the method
/// inherits bisection's guaranteed convergence while retaining quadratic
/// local convergence. Endpoint clamping follows the same convention as
/// [`bisect_decreasing`].
///
/// # Errors
///
/// Same conditions as [`bisect_decreasing`].
///
/// # Examples
///
/// ```
/// use lrgp_num::roots::newton_safeguarded;
/// // f(x) = 27 - x^3 (strictly decreasing on [0, 10]); root at x = 3.
/// let root = newton_safeguarded(
///     |x| 27.0 - x * x * x,
///     |x| -3.0 * x * x,
///     0.0,
///     10.0,
///     1e-12,
///     100,
/// )
/// .unwrap();
/// assert!((root - 3.0).abs() < 1e-9);
/// ```
#[must_use = "this Result reports a failure the caller must handle"]
pub fn newton_safeguarded<F, D>(
    mut f: F,
    mut df: D,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(RootError::InvalidInterval { lo, hi });
    }
    let f_lo = f(lo);
    if !f_lo.is_finite() {
        return Err(RootError::NonFinite { at: lo });
    }
    if f_lo <= 0.0 {
        return Ok(lo);
    }
    let f_hi = f(hi);
    if !f_hi.is_finite() {
        return Err(RootError::NonFinite { at: hi });
    }
    if f_hi >= 0.0 {
        return Ok(hi);
    }

    let (mut a, mut b) = (lo, hi);
    let mut x = 0.5 * (a + b);
    for _ in 0..max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(RootError::NonFinite { at: x });
        }
        // Maintain the bracket: f is decreasing, positive left of the root.
        if fx > 0.0 {
            a = x;
        } else {
            b = x;
        }
        if (b - a) <= tol || fx == 0.0 {
            return Ok(x);
        }
        let dfx = df(x);
        let newton = x - fx / dfx;
        let next = if dfx.is_finite() && dfx != 0.0 && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
        // Sub-ULP bracket: no representable point strictly inside.
        if next <= a || next >= b {
            return Ok(0.5 * (a + b));
        }
        x = next;
    }
    Err(RootError::IterationLimit { best: x })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_linear_root() {
        let r = bisect_decreasing(|x| 10.0 - 2.0 * x, 0.0, 100.0, 1e-12, 200).unwrap();
        assert!((r - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_clamps_low_when_derivative_negative_everywhere() {
        // f < 0 on the whole interval => maximizer at lo.
        let r = bisect_decreasing(|_| -1.0, 2.0, 7.0, 1e-12, 100).unwrap();
        assert_eq!(r, 2.0);
    }

    #[test]
    fn bisect_clamps_high_when_derivative_positive_everywhere() {
        let r = bisect_decreasing(|_| 1.0, 2.0, 7.0, 1e-12, 100).unwrap();
        assert_eq!(r, 7.0);
    }

    #[test]
    fn bisect_rejects_reversed_interval() {
        let err = bisect_decreasing(|x| -x, 5.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, RootError::InvalidInterval { .. }));
    }

    #[test]
    fn bisect_rejects_nan_bounds() {
        let err = bisect_decreasing(|x| -x, f64::NAN, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, RootError::InvalidInterval { .. }));
    }

    #[test]
    fn bisect_reports_non_finite_function() {
        let err = bisect_decreasing(|_| f64::NAN, 0.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, RootError::NonFinite { .. }));
    }

    #[test]
    fn bisect_iteration_limit_reports_best() {
        let err = bisect_decreasing(|x| 1.0 - x, 0.0, 1e9, 1e-15, 3).unwrap_err();
        match err {
            RootError::IterationLimit { best } => assert!(best.is_finite()),
            other => panic!("expected iteration limit, got {other:?}"),
        }
    }

    #[test]
    fn newton_matches_bisection_on_log_derivative() {
        // Derivative of S·log(1+r) − P·r is S/(1+r) − P; root r = S/P − 1.
        let (s, p) = (500.0, 2.5);
        let f = |r: f64| s / (1.0 + r) - p;
        let df = |r: f64| -s / (1.0 + r).powi(2);
        let newton = newton_safeguarded(f, df, 0.0, 1000.0, 1e-12, 100).unwrap();
        let bisect = bisect_decreasing(f, 0.0, 1000.0, 1e-12, 200).unwrap();
        let exact = s / p - 1.0;
        assert!((newton - exact).abs() < 1e-8);
        assert!((bisect - exact).abs() < 1e-6);
    }

    #[test]
    fn newton_clamps_like_bisection() {
        assert_eq!(
            newton_safeguarded(|_| -2.0, |_| -1.0, 1.0, 9.0, 1e-12, 50).unwrap(),
            1.0
        );
        assert_eq!(
            newton_safeguarded(|_| 2.0, |_| -1.0, 1.0, 9.0, 1e-12, 50).unwrap(),
            9.0
        );
    }

    #[test]
    fn newton_survives_zero_derivative_via_bisection_fallback() {
        // df = 0 everywhere forces the bisection fallback each step.
        let r = newton_safeguarded(|x| 4.0 - x, |_| 0.0, 0.0, 10.0, 1e-10, 200).unwrap();
        assert!((r - 4.0).abs() < 1e-8);
    }

    #[test]
    fn root_error_display_is_informative() {
        let msg = RootError::NotBracketed { f_lo: 1.0, f_hi: 2.0 }.to_string();
        assert!(msg.contains("not bracketed"));
        let msg = RootError::InvalidInterval { lo: 3.0, hi: 1.0 }.to_string();
        assert!(msg.contains("invalid interval"));
    }
}
