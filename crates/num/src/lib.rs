//! Numeric substrate for the LRGP reproduction.
//!
//! This crate collects the small, self-contained numerical tools the rest of
//! the workspace builds on:
//!
//! * [`roots`] — safeguarded scalar root finding (bisection, Newton with a
//!   bisection fallback) used by the Lagrangian rate allocator to solve
//!   `Φ'(r) = 0` for utility functions without a closed form.
//! * [`series`] — time-series recording and analysis: sliding-window
//!   oscillation amplitude, the paper's convergence criterion (amplitude below
//!   0.1 % of the utility), and sign-flip fluctuation detection used by the
//!   adaptive-γ controller.
//! * [`stats`] — summary statistics (mean, variance, extrema) and an
//!   exponentially weighted moving average.
//!
//! Everything here is deterministic and allocation-light; no global state.
//!
//! # Examples
//!
//! ```
//! use lrgp_num::roots::bisect_decreasing;
//!
//! // Solve 10/(1+r) - 0.5 = 0  =>  r = 19.
//! let f = |r: f64| 10.0 / (1.0 + r) - 0.5;
//! let r = bisect_decreasing(f, 0.0, 100.0, 1e-12, 200).expect("bracketed");
//! assert!((r - 19.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod roots;
pub mod series;
pub mod stats;

pub use roots::{bisect_decreasing, newton_safeguarded, RootError};
pub use series::{ConvergenceCriterion, FluctuationDetector, SlidingWindow, TimeSeries};
pub use stats::{Ewma, Summary};
