//! `lrgp` — command-line interface to the LRGP reproduction.
//!
//! Run `lrgp help` for usage. Subcommands: generate workload files, solve
//! them with LRGP, run the simulated-annealing baseline, compare the two,
//! simulate the distributed protocol, inspect workload files, and run the
//! determinism-invariant static analyzer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod commands;
mod run;

use commands::{parse, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Command::Help = command {
        println!("{USAGE}");
        return;
    }
    if let Err(e) = run::run(command) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
