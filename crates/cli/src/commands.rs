//! Command-line parsing for the `lrgp` binary.
//!
//! Hand-rolled (no external argument-parsing dependency): each subcommand
//! parses into a typed struct, with errors carrying usage hints. Parsing is
//! pure and fully unit-tested; execution lives in [`crate::run`].

use std::fmt;
use std::path::PathBuf;

/// Where a workload comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadRef {
    /// The paper's Table 1 base workload.
    Base,
    /// A JSON workload file produced by `lrgp workload` or the library.
    File(PathBuf),
}

impl WorkloadRef {
    fn parse(token: &str) -> WorkloadRef {
        if token == "base" {
            WorkloadRef::Base
        } else {
            WorkloadRef::File(PathBuf::from(token))
        }
    }
}

/// γ selection for `solve`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaArg {
    /// The paper's adaptive heuristic.
    Adaptive,
    /// A fixed step size.
    Fixed(f64),
}

/// Worker-thread selection for `solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadsArg {
    /// The sequential reference engine.
    Sequential,
    /// Size the worker pool from the problem and the machine.
    Auto,
    /// A fixed number of worker threads.
    Count(usize),
}

/// Incremental-evaluation selection for `solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalArg {
    /// Force the full-recompute reference step.
    Off,
    /// Force the dirty-set incremental step.
    On,
    /// Let the engine decide (the default).
    Auto,
}

impl IncrementalArg {
    fn parse(raw: &str) -> Result<IncrementalArg, ParseError> {
        match raw {
            "off" => Ok(IncrementalArg::Off),
            "on" => Ok(IncrementalArg::On),
            "auto" => Ok(IncrementalArg::Auto),
            other => {
                Err(ParseError(format!("--incremental: expected on|off|auto, got {other:?}")))
            }
        }
    }
}

/// Numerics selection for `solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericsArg {
    /// The bitwise-reproducible scalar kernels (the default).
    Strict,
    /// The lane-batched kernels with closed-form cohort solves.
    Vectorized,
}

impl NumericsArg {
    fn parse(raw: &str) -> Result<NumericsArg, ParseError> {
        match raw {
            "strict" => Ok(NumericsArg::Strict),
            "vectorized" => Ok(NumericsArg::Vectorized),
            other => {
                Err(ParseError(format!("--numerics: expected strict|vectorized, got {other:?}")))
            }
        }
    }
}

/// Reliability-axis selection for `solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityArg {
    /// Rate-only allocation (the default; pre-reliability behavior).
    Off,
    /// Joint rate–reliability allocation over the workload's loss model.
    Joint,
}

impl ReliabilityArg {
    fn parse(raw: &str) -> Result<ReliabilityArg, ParseError> {
        match raw {
            "off" => Ok(ReliabilityArg::Off),
            "joint" => Ok(ReliabilityArg::Joint),
            other => {
                Err(ParseError(format!("--reliability: expected off|joint, got {other:?}")))
            }
        }
    }
}

/// `lrgp workload` — generate a workload JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCmd {
    /// Utility shape (`log`, `pow25`, `pow50`, `pow75`).
    pub shape: String,
    /// Disjoint system copies (§4.3 flow scaling).
    pub system_copies: usize,
    /// Consumer-node copies per system (§4.3 c-node scaling).
    pub cnode_copies: usize,
    /// Output path.
    pub output: PathBuf,
}

/// `lrgp solve` — run LRGP on a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveCmd {
    /// The workload to solve.
    pub workload: WorkloadRef,
    /// Iteration budget.
    pub iterations: usize,
    /// γ mode.
    pub gamma: GammaArg,
    /// Worker threads for the sharded engine.
    pub threads: ThreadsArg,
    /// Incremental dirty-set evaluation.
    pub incremental: IncrementalArg,
    /// Numerics axis: strict scalar kernels or vectorized ones.
    pub numerics: NumericsArg,
    /// Reliability axis: rate-only or joint rate–reliability.
    pub reliability: ReliabilityArg,
    /// Optional CSV path for the utility trace.
    pub trace: Option<PathBuf>,
    /// Optional JSON path for the solved problem + allocation.
    pub save: Option<PathBuf>,
}

/// `lrgp bench` — per-iteration step benchmarks, baseline vs incremental.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCmd {
    /// Write the machine-readable report to [`BenchCmd::output`].
    pub json: bool,
    /// Shrink warmup/sample counts for CI smoke runs.
    pub quick: bool,
    /// Report path (default `BENCH_lrgp.json`).
    pub output: PathBuf,
    /// Fail (exit non-zero) when the large workload's near-converged
    /// incremental speedup falls below this factor.
    pub min_speedup: Option<f64>,
    /// Fail (exit non-zero) when the crossover workload's pooled-threads
    /// ratio (sequential / pooled near-converged) falls below this factor.
    pub min_thread_ratio: Option<f64>,
    /// Fail (exit non-zero) when the large workload's vectorized-numerics
    /// ratio (strict / vectorized near-converged) falls below this factor.
    pub min_vector_ratio: Option<f64>,
}

/// `lrgp anneal` — run the simulated-annealing baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealCmd {
    /// The workload to solve.
    pub workload: WorkloadRef,
    /// Total SA steps.
    pub steps: u64,
    /// Start temperature.
    pub temperature: f64,
    /// RNG seed.
    pub seed: u64,
}

/// `lrgp compare` — LRGP vs the SA sweep on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareCmd {
    /// The workload to compare on.
    pub workload: WorkloadRef,
    /// SA steps per sweep cell.
    pub steps: u64,
    /// RNG seed.
    pub seed: u64,
}

/// `lrgp simulate` — run the distributed protocol on a simulated overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateCmd {
    /// The workload to simulate.
    pub workload: WorkloadRef,
    /// `true` = asynchronous protocol, `false` = synchronous rounds.
    pub asynchronous: bool,
    /// One-way latency between nodes, milliseconds.
    pub latency_ms: u64,
    /// Sync: number of rounds. Async: simulated seconds.
    pub amount: u64,
}

/// `lrgp info` — validate and describe a workload file.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoCmd {
    /// The workload to describe.
    pub workload: WorkloadRef,
}

/// `lrgp lint` — run the determinism-invariant static analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintCmd {
    /// Roots to scan (default: the current directory).
    pub paths: Vec<PathBuf>,
    /// Exit non-zero when any finding survives suppression.
    pub deny: bool,
    /// Emit the machine-readable JSON report instead of human lines.
    pub json: bool,
    /// Write the report to this file as well as stdout.
    pub out: Option<PathBuf>,
    /// Apply machine-applicable rewrites in place before reporting.
    pub fix: bool,
    /// Report only files that differ from this git ref (diff-scoped mode).
    pub changed: Option<String>,
    /// Print the rule table and exit.
    pub list_rules: bool,
    /// Print one rule's rationale, example, and remediation, then exit.
    pub explain: Option<String>,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a workload file.
    Workload(WorkloadCmd),
    /// Run LRGP.
    Solve(SolveCmd),
    /// Step benchmarks.
    Bench(BenchCmd),
    /// Run the SA baseline.
    Anneal(AnnealCmd),
    /// LRGP vs SA.
    Compare(CompareCmd),
    /// Distributed protocol simulation.
    Simulate(SimulateCmd),
    /// Describe a workload file.
    Info(InfoCmd),
    /// Static analysis.
    Lint(LintCmd),
    /// Print usage.
    Help,
}

/// Parse error with a usage hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for ParseError {}

/// The top-level usage text.
pub const USAGE: &str = "\
lrgp — utility optimization for event-driven distributed infrastructures

USAGE:
  lrgp workload [--shape log|pow25|pow50|pow75] [--systems N] [--cnodes N] -o FILE
  lrgp solve    <base|FILE> [--iters N] [--gamma adaptive|FLOAT] [--threads auto|N] [--incremental on|off|auto] [--numerics strict|vectorized] [--reliability off|joint] [--trace CSV] [--save JSON]
  lrgp bench    [--json] [--quick] [--out FILE] [--min-speedup X] [--min-thread-ratio X] [--min-vector-ratio X]
  lrgp anneal   <base|FILE> [--steps N] [--temp T] [--seed N]
  lrgp compare  <base|FILE> [--steps N] [--seed N]
  lrgp simulate <base|FILE> [--async] [--latency MS] [--amount N]
  lrgp info     <FILE>
  lrgp lint     [PATH ...] [--deny] [--json] [--out FILE] [--fix] [--changed REF] [--list-rules] [--explain RULE]
  lrgp help";

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    it: &mut I,
) -> Result<&'a str, ParseError> {
    it.next().ok_or_else(|| ParseError(format!("{flag} requires a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, ParseError> {
    raw.parse().map_err(|_| ParseError(format!("{flag}: cannot parse {raw:?}")))
}

/// Parses an argument list (without the program name).
pub fn parse<I, S>(args: I) -> Result<Command, ParseError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let mut it = args.iter().map(|s| s.as_str());
    let sub = it.next().ok_or_else(|| ParseError("missing subcommand".into()))?;
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "workload" => {
            let mut cmd = WorkloadCmd {
                shape: "log".into(),
                system_copies: 1,
                cnode_copies: 1,
                output: PathBuf::new(),
            };
            let mut have_output = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--shape" => cmd.shape = take_value(flag, &mut it)?.to_string(),
                    "--systems" => cmd.system_copies = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--cnodes" => cmd.cnode_copies = parse_num(flag, take_value(flag, &mut it)?)?,
                    "-o" | "--output" => {
                        cmd.output = PathBuf::from(take_value(flag, &mut it)?);
                        have_output = true;
                    }
                    other => return Err(ParseError(format!("workload: unknown flag {other}"))),
                }
            }
            if !["log", "pow25", "pow50", "pow75"].contains(&cmd.shape.as_str()) {
                return Err(ParseError(format!("workload: unknown shape {:?}", cmd.shape)));
            }
            if !have_output {
                return Err(ParseError("workload: -o FILE is required".into()));
            }
            Ok(Command::Workload(cmd))
        }
        "solve" => {
            let target = it.next().ok_or_else(|| ParseError("solve: missing workload".into()))?;
            let mut cmd = SolveCmd {
                workload: WorkloadRef::parse(target),
                iterations: 250,
                gamma: GammaArg::Adaptive,
                threads: ThreadsArg::Sequential,
                incremental: IncrementalArg::Auto,
                numerics: NumericsArg::Strict,
                reliability: ReliabilityArg::Off,
                trace: None,
                save: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--iters" => cmd.iterations = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--gamma" => {
                        let raw = take_value(flag, &mut it)?;
                        cmd.gamma = if raw == "adaptive" {
                            GammaArg::Adaptive
                        } else {
                            GammaArg::Fixed(parse_num(flag, raw)?)
                        };
                    }
                    "--threads" => {
                        let raw = take_value(flag, &mut it)?;
                        cmd.threads = if raw == "auto" {
                            ThreadsArg::Auto
                        } else {
                            match parse_num(flag, raw)? {
                                0 => {
                                    return Err(ParseError(
                                        "--threads: must be \"auto\" or ≥ 1".into(),
                                    ))
                                }
                                1 => ThreadsArg::Sequential,
                                n => ThreadsArg::Count(n),
                            }
                        };
                    }
                    "--incremental" => {
                        cmd.incremental = IncrementalArg::parse(take_value(flag, &mut it)?)?;
                    }
                    "--numerics" => {
                        cmd.numerics = NumericsArg::parse(take_value(flag, &mut it)?)?;
                    }
                    "--reliability" => {
                        cmd.reliability = ReliabilityArg::parse(take_value(flag, &mut it)?)?;
                    }
                    "--trace" => cmd.trace = Some(PathBuf::from(take_value(flag, &mut it)?)),
                    "--save" => cmd.save = Some(PathBuf::from(take_value(flag, &mut it)?)),
                    other => return Err(ParseError(format!("solve: unknown flag {other}"))),
                }
            }
            Ok(Command::Solve(cmd))
        }
        "bench" => {
            let mut cmd = BenchCmd {
                json: false,
                quick: false,
                output: PathBuf::from("BENCH_lrgp.json"),
                min_speedup: None,
                min_thread_ratio: None,
                min_vector_ratio: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--json" => cmd.json = true,
                    "--quick" => cmd.quick = true,
                    "--out" | "--output" => {
                        cmd.output = PathBuf::from(take_value(flag, &mut it)?);
                    }
                    "--min-speedup" => {
                        cmd.min_speedup = Some(parse_num(flag, take_value(flag, &mut it)?)?);
                    }
                    "--min-thread-ratio" => {
                        cmd.min_thread_ratio = Some(parse_num(flag, take_value(flag, &mut it)?)?);
                    }
                    "--min-vector-ratio" => {
                        cmd.min_vector_ratio = Some(parse_num(flag, take_value(flag, &mut it)?)?);
                    }
                    other => return Err(ParseError(format!("bench: unknown flag {other}"))),
                }
            }
            Ok(Command::Bench(cmd))
        }
        "anneal" => {
            let target = it.next().ok_or_else(|| ParseError("anneal: missing workload".into()))?;
            let mut cmd = AnnealCmd {
                workload: WorkloadRef::parse(target),
                steps: 1_000_000,
                temperature: 100.0,
                seed: 42,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--steps" => cmd.steps = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--temp" => cmd.temperature = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => cmd.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    other => return Err(ParseError(format!("anneal: unknown flag {other}"))),
                }
            }
            Ok(Command::Anneal(cmd))
        }
        "compare" => {
            let target =
                it.next().ok_or_else(|| ParseError("compare: missing workload".into()))?;
            let mut cmd =
                CompareCmd { workload: WorkloadRef::parse(target), steps: 1_000_000, seed: 42 };
            while let Some(flag) = it.next() {
                match flag {
                    "--steps" => cmd.steps = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => cmd.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    other => return Err(ParseError(format!("compare: unknown flag {other}"))),
                }
            }
            Ok(Command::Compare(cmd))
        }
        "simulate" => {
            let target =
                it.next().ok_or_else(|| ParseError("simulate: missing workload".into()))?;
            let mut cmd = SimulateCmd {
                workload: WorkloadRef::parse(target),
                asynchronous: false,
                latency_ms: 10,
                amount: 0,
            };
            let mut have_amount = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--async" => cmd.asynchronous = true,
                    "--latency" => cmd.latency_ms = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--amount" => {
                        cmd.amount = parse_num(flag, take_value(flag, &mut it)?)?;
                        have_amount = true;
                    }
                    other => return Err(ParseError(format!("simulate: unknown flag {other}"))),
                }
            }
            if !have_amount {
                cmd.amount = if cmd.asynchronous { 10 } else { 100 };
            }
            Ok(Command::Simulate(cmd))
        }
        "info" => {
            let target = it.next().ok_or_else(|| ParseError("info: missing workload".into()))?;
            Ok(Command::Info(InfoCmd { workload: WorkloadRef::parse(target) }))
        }
        "lint" => {
            let mut cmd = LintCmd {
                paths: Vec::new(),
                deny: false,
                json: false,
                out: None,
                fix: false,
                changed: None,
                list_rules: false,
                explain: None,
            };
            while let Some(arg) = it.next() {
                match arg {
                    "--deny" => cmd.deny = true,
                    "--json" => cmd.json = true,
                    "--fix" => cmd.fix = true,
                    "--out" | "--output" => {
                        cmd.out = Some(PathBuf::from(take_value(arg, &mut it)?));
                    }
                    "--changed" => {
                        cmd.changed = Some(take_value(arg, &mut it)?.to_string());
                    }
                    "--list-rules" => cmd.list_rules = true,
                    "--explain" => {
                        cmd.explain = Some(take_value(arg, &mut it)?.to_string());
                    }
                    other if other.starts_with('-') => {
                        return Err(ParseError(format!("lint: unknown flag {other}")))
                    }
                    path => cmd.paths.push(PathBuf::from(path)),
                }
            }
            Ok(Command::Lint(cmd))
        }
        other => Err(ParseError(format!("unknown subcommand {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ParseError> {
        parse(args.iter().copied())
    }

    #[test]
    fn help_variants() {
        for a in [&["help"][..], &["--help"], &["-h"]] {
            assert_eq!(p(a).unwrap(), Command::Help);
        }
    }

    #[test]
    fn missing_subcommand_errors() {
        let e = p(&[]).unwrap_err();
        assert!(e.0.contains("missing subcommand"));
        assert!(e.to_string().contains("USAGE"));
    }

    #[test]
    fn workload_full_flags() {
        let c = p(&[
            "workload", "--shape", "pow50", "--systems", "2", "--cnodes", "4", "-o", "w.json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Workload(WorkloadCmd {
                shape: "pow50".into(),
                system_copies: 2,
                cnode_copies: 4,
                output: PathBuf::from("w.json"),
            })
        );
    }

    #[test]
    fn workload_requires_output_and_valid_shape() {
        assert!(p(&["workload"]).unwrap_err().0.contains("-o FILE"));
        assert!(p(&["workload", "--shape", "cubic", "-o", "x"])
            .unwrap_err()
            .0
            .contains("unknown shape"));
    }

    #[test]
    fn solve_defaults_and_overrides() {
        let c = p(&["solve", "base"]).unwrap();
        assert_eq!(
            c,
            Command::Solve(SolveCmd {
                workload: WorkloadRef::Base,
                iterations: 250,
                gamma: GammaArg::Adaptive,
                threads: ThreadsArg::Sequential,
                incremental: IncrementalArg::Auto,
                numerics: NumericsArg::Strict,
                reliability: ReliabilityArg::Off,
                trace: None,
                save: None,
            })
        );
        let c = p(&[
            "solve", "w.json", "--iters", "99", "--gamma", "0.1", "--threads", "4", "--trace",
            "t.csv", "--save", "out.json",
        ])
        .unwrap();
        match c {
            Command::Solve(s) => {
                assert_eq!(s.workload, WorkloadRef::File(PathBuf::from("w.json")));
                assert_eq!(s.iterations, 99);
                assert_eq!(s.gamma, GammaArg::Fixed(0.1));
                assert_eq!(s.threads, ThreadsArg::Count(4));
                assert_eq!(s.trace, Some(PathBuf::from("t.csv")));
                assert_eq!(s.save, Some(PathBuf::from("out.json")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn solve_numerics_variants() {
        let numerics = |args: &[&str]| match p(args).unwrap() {
            Command::Solve(s) => s.numerics,
            other => panic!("{other:?}"),
        };
        assert_eq!(numerics(&["solve", "base"]), NumericsArg::Strict);
        assert_eq!(numerics(&["solve", "base", "--numerics", "strict"]), NumericsArg::Strict);
        assert_eq!(
            numerics(&["solve", "base", "--numerics", "vectorized"]),
            NumericsArg::Vectorized
        );
        assert!(p(&["solve", "base", "--numerics", "fast"])
            .unwrap_err()
            .0
            .contains("strict|vectorized"));
        assert!(p(&["solve", "base", "--numerics"]).unwrap_err().0.contains("requires a value"));
    }

    #[test]
    fn solve_reliability_variants() {
        let reliability = |args: &[&str]| match p(args).unwrap() {
            Command::Solve(s) => s.reliability,
            other => panic!("{other:?}"),
        };
        assert_eq!(reliability(&["solve", "base"]), ReliabilityArg::Off);
        assert_eq!(reliability(&["solve", "base", "--reliability", "off"]), ReliabilityArg::Off);
        assert_eq!(
            reliability(&["solve", "base", "--reliability", "joint"]),
            ReliabilityArg::Joint
        );
        assert!(p(&["solve", "base", "--reliability", "maybe"])
            .unwrap_err()
            .0
            .contains("off|joint"));
        assert!(p(&["solve", "base", "--reliability"])
            .unwrap_err()
            .0
            .contains("requires a value"));
    }

    #[test]
    fn solve_incremental_variants() {
        let incremental = |args: &[&str]| match p(args).unwrap() {
            Command::Solve(s) => s.incremental,
            other => panic!("{other:?}"),
        };
        assert_eq!(incremental(&["solve", "base"]), IncrementalArg::Auto);
        assert_eq!(incremental(&["solve", "base", "--incremental", "on"]), IncrementalArg::On);
        assert_eq!(incremental(&["solve", "base", "--incremental", "off"]), IncrementalArg::Off);
        assert_eq!(
            incremental(&["solve", "base", "--incremental", "auto"]),
            IncrementalArg::Auto
        );
        assert!(p(&["solve", "base", "--incremental", "maybe"])
            .unwrap_err()
            .0
            .contains("on|off|auto"));
    }

    #[test]
    fn bench_defaults_and_flags() {
        assert_eq!(
            p(&["bench"]).unwrap(),
            Command::Bench(BenchCmd {
                json: false,
                quick: false,
                output: PathBuf::from("BENCH_lrgp.json"),
                min_speedup: None,
                min_thread_ratio: None,
                min_vector_ratio: None,
            })
        );
        assert_eq!(
            p(&[
                "bench",
                "--json",
                "--quick",
                "--out",
                "b.json",
                "--min-speedup",
                "3.5",
                "--min-thread-ratio",
                "1.0",
                "--min-vector-ratio",
                "1.15",
            ])
            .unwrap(),
            Command::Bench(BenchCmd {
                json: true,
                quick: true,
                output: PathBuf::from("b.json"),
                min_speedup: Some(3.5),
                min_thread_ratio: Some(1.0),
                min_vector_ratio: Some(1.15),
            })
        );
        assert!(p(&["bench", "--bogus"]).unwrap_err().0.contains("unknown flag"));
        assert!(p(&["bench", "--min-speedup"]).unwrap_err().0.contains("requires a value"));
        assert!(p(&["bench", "--min-speedup", "fast"]).unwrap_err().0.contains("cannot parse"));
        assert!(p(&["bench", "--min-thread-ratio"]).unwrap_err().0.contains("requires a value"));
        assert!(p(&["bench", "--min-thread-ratio", "x"]).unwrap_err().0.contains("cannot parse"));
        assert!(p(&["bench", "--min-vector-ratio"]).unwrap_err().0.contains("requires a value"));
        assert!(p(&["bench", "--min-vector-ratio", "x"]).unwrap_err().0.contains("cannot parse"));
    }

    #[test]
    fn solve_threads_variants() {
        let threads = |args: &[&str]| match p(args).unwrap() {
            Command::Solve(s) => s.threads,
            other => panic!("{other:?}"),
        };
        assert_eq!(threads(&["solve", "base", "--threads", "auto"]), ThreadsArg::Auto);
        assert_eq!(threads(&["solve", "base", "--threads", "1"]), ThreadsArg::Sequential);
        assert_eq!(threads(&["solve", "base", "--threads", "8"]), ThreadsArg::Count(8));
        assert!(p(&["solve", "base", "--threads", "0"]).unwrap_err().0.contains("≥ 1"));
        assert!(p(&["solve", "base", "--threads", "many"]).unwrap_err().0.contains("cannot parse"));
    }

    #[test]
    fn anneal_and_compare_parse() {
        let c = p(&["anneal", "base", "--steps", "5000", "--temp", "5", "--seed", "7"]).unwrap();
        assert_eq!(
            c,
            Command::Anneal(AnnealCmd {
                workload: WorkloadRef::Base,
                steps: 5000,
                temperature: 5.0,
                seed: 7,
            })
        );
        let c = p(&["compare", "base", "--steps", "1000"]).unwrap();
        assert_eq!(
            c,
            Command::Compare(CompareCmd { workload: WorkloadRef::Base, steps: 1000, seed: 42 })
        );
    }

    #[test]
    fn simulate_defaults_depend_on_mode() {
        match p(&["simulate", "base"]).unwrap() {
            Command::Simulate(s) => {
                assert!(!s.asynchronous);
                assert_eq!(s.amount, 100);
                assert_eq!(s.latency_ms, 10);
            }
            other => panic!("{other:?}"),
        }
        match p(&["simulate", "base", "--async"]).unwrap() {
            Command::Simulate(s) => {
                assert!(s.asynchronous);
                assert_eq!(s.amount, 10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lint_defaults_and_flags() {
        let defaults = LintCmd {
            paths: vec![],
            deny: false,
            json: false,
            out: None,
            fix: false,
            changed: None,
            list_rules: false,
            explain: None,
        };
        assert_eq!(p(&["lint"]).unwrap(), Command::Lint(defaults.clone()));
        assert_eq!(
            p(&["lint", "crates/core", "crates/model", "--deny", "--json", "--out", "r.json"])
                .unwrap(),
            Command::Lint(LintCmd {
                paths: vec![PathBuf::from("crates/core"), PathBuf::from("crates/model")],
                deny: true,
                json: true,
                out: Some(PathBuf::from("r.json")),
                ..defaults.clone()
            })
        );
        assert_eq!(
            p(&["lint", "--list-rules"]).unwrap(),
            Command::Lint(LintCmd { list_rules: true, ..defaults.clone() })
        );
        assert_eq!(
            p(&["lint", "--explain", "kernel-impure"]).unwrap(),
            Command::Lint(LintCmd {
                explain: Some("kernel-impure".to_string()),
                ..defaults.clone()
            })
        );
        assert!(p(&["lint", "--bogus"]).unwrap_err().0.contains("unknown flag"));
        assert!(p(&["lint", "--out"]).unwrap_err().0.contains("requires a value"));
        assert!(p(&["lint", "--explain"]).unwrap_err().0.contains("requires a value"));
    }

    #[test]
    fn lint_fix_and_changed_flags() {
        let defaults = LintCmd {
            paths: vec![],
            deny: false,
            json: false,
            out: None,
            fix: false,
            changed: None,
            list_rules: false,
            explain: None,
        };
        assert_eq!(
            p(&["lint", "--fix"]).unwrap(),
            Command::Lint(LintCmd { fix: true, ..defaults.clone() })
        );
        assert_eq!(
            p(&["lint", "--changed", "origin/main", "--deny"]).unwrap(),
            Command::Lint(LintCmd {
                changed: Some("origin/main".to_string()),
                deny: true,
                ..defaults.clone()
            })
        );
        assert!(p(&["lint", "--changed"]).unwrap_err().0.contains("requires a value"));
    }

    #[test]
    fn info_and_unknowns() {
        assert_eq!(
            p(&["info", "w.json"]).unwrap(),
            Command::Info(InfoCmd { workload: WorkloadRef::File(PathBuf::from("w.json")) })
        );
        assert!(p(&["frobnicate"]).unwrap_err().0.contains("unknown subcommand"));
        assert!(p(&["solve", "base", "--bogus"]).unwrap_err().0.contains("unknown flag"));
        assert!(p(&["solve", "base", "--iters"]).unwrap_err().0.contains("requires a value"));
        assert!(p(&["solve", "base", "--iters", "abc"]).unwrap_err().0.contains("cannot parse"));
    }
}
