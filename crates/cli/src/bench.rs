//! `lrgp bench` — tracked per-iteration step benchmarks.
//!
//! Measures the LRGP step with the full-recompute baseline and with the
//! incremental dirty-set path ([`lrgp::plan::IncrementalMode`]) on two workloads:
//!
//! * **paper** — the Table 1 base workload (small; bookkeeping-bound).
//! * **large** — a synthetic workload sized so the per-iteration kernel
//!   work dominates; this is where the incremental path's skipping pays.
//!
//! A third, crossover-scale workload (**huge_10k**: 10,000 flows, 100,000
//! classes) runs only a sequential-vs-pooled comparison — the
//! `--min-thread-ratio` floor asserts the persistent worker pool is no
//! slower than the sequential path at the scale where it must pay.
//!
//! **What "baseline" means.** Since the engines were unified behind one
//! dirty-set executor, `IncrementalMode::Off` runs as the all-dirty
//! special case of the same executor — it recomputes every quantity each
//! step but still reuses the persistent step state (price term tables,
//! per-node admission orders, scratch buffers) across steps. That warm
//! all-dirty step is reported as `warm_all_dirty_ns` for context, but it
//! is *not* the baseline: the baseline drops the executor state before
//! every timed step, so each sample pays the full rebuild from the bare
//! problem — the cost a non-incremental implementation pays per
//! iteration, and what the pre-unification reference engine measured.
//!
//! For each workload the report carries the median first-iteration time
//! (on a fresh engine; term tables are precomputed at construction, so
//! this is the all-dirty step) and the median near-converged step time
//! (after a warmup run), plus a worker-thread sweep of the incremental
//! path. `--json` writes the machine-readable report (default
//! `BENCH_lrgp.json`), which is committed to the repository as the
//! tracked baseline.

use lrgp::{Engine, IncrementalMode, LrgpConfig, Numerics, Parallelism, Reliability};
use lrgp_model::workloads::{mixed_loss_workload, paper_workload, RandomWorkload};
use lrgp_model::{Problem, UtilityShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// Median step times of one engine variant, nanoseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct VariantNs {
    /// Median time of the first iteration on a fresh engine (the term
    /// tables are built at engine construction; this is the all-dirty
    /// step).
    pub first_iteration_ns: u64,
    /// Median per-iteration time after the warmup run.
    pub near_converged_ns: u64,
}

/// One entry of the incremental worker-thread sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ThreadsEntry {
    /// Worker threads (1 = sequential path).
    pub threads: usize,
    /// Median near-converged incremental step time, nanoseconds.
    pub near_converged_ns: u64,
}

/// Benchmark results of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadBench {
    /// Workload label.
    pub name: String,
    /// Problem dimensions, for context.
    pub flows: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of consumer classes.
    pub classes: usize,
    /// The full-recompute sequential reference: executor state is dropped
    /// before every timed step, so each sample rebuilds term tables and
    /// admission orders from the bare problem.
    pub baseline: VariantNs,
    /// The dirty-set path, single-threaded.
    pub incremental: VariantNs,
    /// Median near-converged step with `IncrementalMode::Off` and
    /// persistent executor state (the warm all-dirty step). The gap
    /// between this and `baseline.near_converged_ns` is what the unified
    /// executor's cross-step caches buy even without dirty-set skipping.
    pub warm_all_dirty_ns: u64,
    /// `baseline / incremental` near-converged median (higher is better).
    pub near_converged_speedup: f64,
    /// `incremental / baseline` first-iteration median (at most ~1.1 by the
    /// acceptance criterion: the table build must stay cheap).
    pub first_iteration_ratio: f64,
    /// Incremental near-converged medians across worker counts.
    pub threads_sweep: Vec<ThreadsEntry>,
}

/// Sequential-vs-pooled comparison at the crossover scale.
///
/// The per-workload [`WorkloadBench::threads_sweep`] shows *where* the
/// pooled path starts paying; this entry asserts *that* it pays: on a
/// workload big enough that a near-converged step still carries thousands
/// of dirty flows, the pooled `Threads` engine must not be slower than the
/// sequential reference (`thread_ratio ≥ 1.0`). CI enforces the floor via
/// `--min-thread-ratio`. On a single-CPU host the pool declines to
/// dispatch and runs shards inline, so the ratio degenerates to ~1.0 by
/// construction; the floor only bites where hardware parallelism exists.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadRatioBench {
    /// Workload label.
    pub name: String,
    /// Problem dimensions, for context.
    pub flows: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of consumer classes.
    pub classes: usize,
    /// Worker threads of the pooled engine (caller + pooled workers).
    pub workers: usize,
    /// Median near-converged incremental step, sequential engine.
    pub sequential_ns: u64,
    /// Median near-converged incremental step, pooled `Threads` engine.
    pub pooled_ns: u64,
    /// `sequential / pooled` (≥ 1.0 means the pool is no slower).
    pub thread_ratio: f64,
}

/// Strict-vs-vectorized numerics comparison on one workload.
///
/// Both engines run the sequential incremental path; the only difference
/// is the [`lrgp::Numerics`] axis. `vector_ratio` is `strict / vectorized`
/// on the near-converged median, so ≥ 1.0 means the lane-batched kernels
/// and cohort fast paths pay for their dispatch. CI enforces the floor on
/// the crossover-scale workload via `--min-vector-ratio`; the paper-scale
/// entry is context only (it is bookkeeping-bound and its flows sit below
/// one lane, where Vectorized degenerates to the strict code).
#[derive(Debug, Clone, Serialize)]
pub struct NumericsBench {
    /// Workload label.
    pub name: String,
    /// Problem dimensions, for context.
    pub flows: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of consumer classes.
    pub classes: usize,
    /// Median near-converged incremental step, `Numerics::Strict`.
    pub strict_ns: u64,
    /// Median near-converged incremental step, `Numerics::Vectorized`.
    pub vectorized_ns: u64,
    /// `strict / vectorized` (≥ 1.0 means vectorization is no slower).
    pub vector_ratio: f64,
}

/// Reliability-axis comparison on one lossy workload.
///
/// Three engines run the sequential incremental path on the same
/// spec-carrying problem: `Reliability::Off` (the rate-only control — the
/// pre-reliability step, which must stay bit-identical to it),
/// `Reliability::Joint` with `Numerics::Strict`, and `Joint` with
/// `Numerics::Vectorized`. `joint_overhead` is `strict / off` — what the
/// per-step ρ phase and the redundancy-coupled link usage cost on top of
/// the rate-only step. `vector_ratio` is `strict / vectorized` within the
/// joint step, mirroring [`NumericsBench`].
#[derive(Debug, Clone, Serialize)]
pub struct ReliabilityBench {
    /// Workload label.
    pub name: String,
    /// Problem dimensions, for context.
    pub flows: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of links (each carrying a loss rate).
    pub links: usize,
    /// Median near-converged step, `Reliability::Off` (rate-only control).
    pub off_ns: u64,
    /// Median near-converged step, `Reliability::Joint` + `Numerics::Strict`.
    pub strict_ns: u64,
    /// Median near-converged step, `Reliability::Joint` + `Numerics::Vectorized`.
    pub vectorized_ns: u64,
    /// `strict / off`: the cost of the joint ρ phase relative to rate-only.
    pub joint_overhead: f64,
    /// `strict / vectorized` within the joint step (≥ 1.0 means the
    /// lane-batched ρ kernels are no slower).
    pub vector_ratio: f64,
}

/// The whole report, serialized to `BENCH_lrgp.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// True when produced by `--quick` (smaller samples; CI smoke).
    pub quick: bool,
    /// Warmup iterations before the near-converged sampling window.
    pub warmup_iterations: usize,
    /// Timed iterations per median.
    pub sample_iterations: usize,
    /// Per-workload results.
    pub workloads: Vec<WorkloadBench>,
    /// Pooled-threads floors at the crossover scale.
    pub thread_ratio: Vec<ThreadRatioBench>,
    /// Strict-vs-vectorized numerics comparison per workload.
    pub numerics: Vec<NumericsBench>,
    /// Reliability-axis (Off vs Joint, strict vs vectorized) comparison on
    /// lossy workloads.
    pub reliability: Vec<ReliabilityBench>,
}

struct BenchParams {
    warmup: usize,
    samples: usize,
    first_repeats: usize,
}

fn config(incremental: IncrementalMode, parallelism: Parallelism) -> LrgpConfig {
    LrgpConfig { incremental, parallelism, ..LrgpConfig::default() }
}

fn median(mut samples: Vec<u64>) -> u64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median wall time of the first iteration over fresh engines.
fn first_iteration_ns(problem: &Problem, config: LrgpConfig, repeats: usize) -> u64 {
    let samples = (0..repeats)
        .map(|_| {
            let mut engine = Engine::new(problem.clone(), config);
            let start = Instant::now();
            engine.step();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    median(samples)
}

/// Median per-step wall time after `warmup` iterations.
fn near_converged_ns(
    problem: &Problem,
    config: LrgpConfig,
    warmup: usize,
    samples: usize,
) -> u64 {
    let mut engine = Engine::new(problem.clone(), config);
    engine.run(warmup);
    let times = (0..samples)
        .map(|_| {
            let start = Instant::now();
            engine.step();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    median(times)
}

/// Median per-step wall time after `warmup` iterations, with the executor
/// state dropped before every timed step: each sample pays the full
/// rebuild (term tables, admission orders) from the bare problem, which
/// is the per-iteration cost of a non-incremental implementation.
/// `replace_problem` with an identical problem keeps the operating point
/// (rates, populations, prices) and discards only the step state, so the
/// iterate trajectory is bit-identical to a plain `IncrementalMode::Off`
/// run.
fn from_scratch_near_converged_ns(
    problem: &Problem,
    config: LrgpConfig,
    warmup: usize,
    samples: usize,
) -> u64 {
    let mut engine = Engine::new(problem.clone(), config);
    engine.run(warmup);
    let times = (0..samples)
        .map(|_| {
            let current = engine.problem().clone();
            engine.replace_problem(current);
            let start = Instant::now();
            engine.step();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    median(times)
}

fn bench_workload(name: &str, problem: &Problem, params: &BenchParams) -> WorkloadBench {
    let baseline_config = config(IncrementalMode::Off, Parallelism::Sequential);
    let incremental_config = config(IncrementalMode::On, Parallelism::Sequential);
    let baseline = VariantNs {
        first_iteration_ns: first_iteration_ns(problem, baseline_config, params.first_repeats),
        near_converged_ns: from_scratch_near_converged_ns(
            problem,
            baseline_config,
            params.warmup,
            params.samples,
        ),
    };
    let warm_all_dirty_ns =
        near_converged_ns(problem, baseline_config, params.warmup, params.samples);
    let incremental = VariantNs {
        first_iteration_ns: first_iteration_ns(
            problem,
            incremental_config,
            params.first_repeats,
        ),
        near_converged_ns: near_converged_ns(
            problem,
            incremental_config,
            params.warmup,
            params.samples,
        ),
    };
    let threads_sweep = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let parallelism = if threads == 1 {
                Parallelism::Sequential
            } else {
                Parallelism::Threads(threads)
            };
            ThreadsEntry {
                threads,
                near_converged_ns: near_converged_ns(
                    problem,
                    config(IncrementalMode::On, parallelism),
                    params.warmup,
                    params.samples,
                ),
            }
        })
        .collect();
    WorkloadBench {
        name: name.to_string(),
        flows: problem.num_flows(),
        nodes: problem.num_nodes(),
        classes: problem.num_classes(),
        near_converged_speedup: baseline.near_converged_ns as f64
            / incremental.near_converged_ns.max(1) as f64,
        first_iteration_ratio: incremental.first_iteration_ns as f64
            / baseline.first_iteration_ns.max(1) as f64,
        baseline,
        incremental,
        warm_all_dirty_ns,
        threads_sweep,
    }
}

/// Interleaved near-converged comparison of the sequential engine against
/// the pooled `Threads` engine on one workload.
///
/// Both engines warm up independently, then the timed steps alternate
/// between the two so scheduler drift and frequency scaling land on both
/// sides of the ratio equally. The pooled side uses the machine's
/// available parallelism capped at four workers — the same cap the
/// committed `threads_sweep` tops out at.
fn thread_ratio_bench(name: &str, problem: &Problem, params: &BenchParams) -> ThreadRatioBench {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(4);
    let sequential_config = config(IncrementalMode::On, Parallelism::Sequential);
    let pooled_config = if workers > 1 {
        config(IncrementalMode::On, Parallelism::Threads(workers))
    } else {
        sequential_config
    };
    let mut sequential = Engine::new(problem.clone(), sequential_config);
    let mut pooled = Engine::new(problem.clone(), pooled_config);
    sequential.run(params.warmup);
    pooled.run(params.warmup);
    let mut sequential_samples = Vec::with_capacity(params.samples);
    let mut pooled_samples = Vec::with_capacity(params.samples);
    for _ in 0..params.samples {
        let start = Instant::now();
        sequential.step();
        sequential_samples.push(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        pooled.step();
        pooled_samples.push(start.elapsed().as_nanos() as u64);
    }
    let sequential_ns = median(sequential_samples);
    let pooled_ns = median(pooled_samples);
    ThreadRatioBench {
        name: name.to_string(),
        flows: problem.num_flows(),
        nodes: problem.num_nodes(),
        classes: problem.num_classes(),
        workers,
        sequential_ns,
        pooled_ns,
        thread_ratio: sequential_ns as f64 / pooled_ns.max(1) as f64,
    }
}

/// Interleaved near-converged comparison of `Numerics::Strict` against
/// `Numerics::Vectorized` on one workload.
///
/// Mirrors [`thread_ratio_bench`]: both engines warm up independently, then
/// the timed steps alternate so scheduler drift and frequency scaling land
/// on both sides of the ratio equally. Both engines run the sequential
/// incremental path, so the ratio isolates the numerics axis.
fn numerics_bench(name: &str, problem: &Problem, params: &BenchParams) -> NumericsBench {
    let base = config(IncrementalMode::On, Parallelism::Sequential);
    let strict_config = LrgpConfig { numerics: Numerics::Strict, ..base };
    let vectorized_config = LrgpConfig { numerics: Numerics::Vectorized, ..base };
    let mut strict = Engine::new(problem.clone(), strict_config);
    let mut vectorized = Engine::new(problem.clone(), vectorized_config);
    strict.run(params.warmup);
    vectorized.run(params.warmup);
    let mut strict_samples = Vec::with_capacity(params.samples);
    let mut vectorized_samples = Vec::with_capacity(params.samples);
    for _ in 0..params.samples {
        let start = Instant::now();
        strict.step();
        strict_samples.push(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        vectorized.step();
        vectorized_samples.push(start.elapsed().as_nanos() as u64);
    }
    let strict_ns = median(strict_samples);
    let vectorized_ns = median(vectorized_samples);
    NumericsBench {
        name: name.to_string(),
        flows: problem.num_flows(),
        nodes: problem.num_nodes(),
        classes: problem.num_classes(),
        strict_ns,
        vectorized_ns,
        vector_ratio: strict_ns as f64 / vectorized_ns.max(1) as f64,
    }
}

/// Interleaved near-converged comparison of the reliability axis on one
/// lossy workload: `Off` (rate-only control) vs `Joint`+`Strict` vs
/// `Joint`+`Vectorized`, all on the sequential incremental path. The
/// timed steps rotate through the three engines so scheduler drift and
/// frequency scaling land on every side of the ratios equally.
fn reliability_bench(name: &str, problem: &Problem, params: &BenchParams) -> ReliabilityBench {
    let base = config(IncrementalMode::On, Parallelism::Sequential);
    let off_config = LrgpConfig { reliability: Reliability::Off, ..base };
    let strict_config =
        LrgpConfig { reliability: Reliability::Joint, numerics: Numerics::Strict, ..base };
    let vectorized_config = LrgpConfig { numerics: Numerics::Vectorized, ..strict_config };
    let mut off = Engine::new(problem.clone(), off_config);
    let mut strict = Engine::new(problem.clone(), strict_config);
    let mut vectorized = Engine::new(problem.clone(), vectorized_config);
    off.run(params.warmup);
    strict.run(params.warmup);
    vectorized.run(params.warmup);
    let mut off_samples = Vec::with_capacity(params.samples);
    let mut strict_samples = Vec::with_capacity(params.samples);
    let mut vectorized_samples = Vec::with_capacity(params.samples);
    for _ in 0..params.samples {
        let start = Instant::now();
        off.step();
        off_samples.push(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        strict.step();
        strict_samples.push(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        vectorized.step();
        vectorized_samples.push(start.elapsed().as_nanos() as u64);
    }
    let off_ns = median(off_samples);
    let strict_ns = median(strict_samples);
    let vectorized_ns = median(vectorized_samples);
    ReliabilityBench {
        name: name.to_string(),
        flows: problem.num_flows(),
        nodes: problem.num_nodes(),
        links: problem.num_links(),
        off_ns,
        strict_ns,
        vectorized_ns,
        joint_overhead: strict_ns as f64 / off_ns.max(1) as f64,
        vector_ratio: strict_ns as f64 / vectorized_ns.max(1) as f64,
    }
}

/// The large synthetic workload: enough flows, nodes, and classes that the
/// per-iteration kernel work dominates the step.
fn large_workload(_quick: bool) -> Problem {
    // Same dimensions in quick mode: the --min-speedup floor is asserted
    // against this workload in CI's quick run, and the speedup only
    // reaches its asymptote once the O(flows × nodes) rebuild dominates
    // the step. Quick mode saves time through warmup/sample counts, not
    // problem size (the full quick suite runs in well under a second).
    let workload = RandomWorkload {
        flows: 400,
        consumer_nodes: 24,
        classes_per_flow: 4,
        mixed_shapes: true,
        ..RandomWorkload::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    workload.generate(&mut rng)
}

/// The crossover-scale workload: 10,000 flows × 10 classes each (100,000
/// classes) over 64 consumer nodes. A near-converged step still carries
/// thousands of dirty flows at this size, so the pooled `Threads` path is
/// past the Auto cost model's crossover on any multi-core machine — this
/// is the workload the `--min-thread-ratio` floor is asserted against.
fn huge_workload() -> Problem {
    let workload = RandomWorkload {
        flows: 10_000,
        consumer_nodes: 64,
        classes_per_flow: 10,
        mixed_shapes: true,
        ..RandomWorkload::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    workload.generate(&mut rng)
}

/// Runs the full benchmark suite.
pub fn run_bench(quick: bool) -> BenchReport {
    let params = if quick {
        BenchParams { warmup: 120, samples: 60, first_repeats: 3 }
    } else {
        BenchParams { warmup: 300, samples: 200, first_repeats: 5 }
    };
    let workloads = vec![
        bench_workload("paper_base", &paper_workload(UtilityShape::Log, 1, 1), &params),
        bench_workload("large_synthetic", &large_workload(quick), &params),
    ];
    // The 10k-flow workload runs only the sequential-vs-pooled comparison:
    // its per-step cost is three orders of magnitude above paper scale, so
    // the full baseline/incremental matrix would dominate the suite's
    // runtime without informing the floor the workload exists to assert.
    let ratio_params = if quick {
        BenchParams { warmup: 40, samples: 30, first_repeats: 1 }
    } else {
        BenchParams { warmup: 100, samples: 80, first_repeats: 1 }
    };
    let huge = huge_workload();
    let thread_ratio = vec![thread_ratio_bench("huge_10k", &huge, &ratio_params)];
    // The numerics axis is compared on every workload, but the
    // `--min-vector-ratio` floor is asserted only against the
    // crossover-scale entry (see `NumericsBench`): at paper scale the
    // vectorized path degenerates to the strict code by design.
    let numerics = vec![
        numerics_bench("paper_base", &paper_workload(UtilityShape::Log, 1, 1), &params),
        numerics_bench("large_synthetic", &large_workload(quick), &params),
        numerics_bench("huge_10k", &huge, &ratio_params),
    ];
    // The reliability axis is timed on a lossy multi-link workload where
    // every flow carries ρ terms; 512 bottleneck pairs put the per-step ρ
    // phase at a scale where its cost is visible over bookkeeping.
    let reliability = vec![reliability_bench(
        "mixed_loss_512",
        &mixed_loss_workload(512, 400.0, 42),
        &ratio_params,
    )];
    BenchReport {
        quick,
        warmup_iterations: params.warmup,
        sample_iterations: params.samples,
        workloads,
        thread_ratio,
        numerics,
        reliability,
    }
}

/// Human-readable summary of a report.
pub fn print_report(report: &BenchReport) {
    for w in &report.workloads {
        println!(
            "{} ({} flows, {} nodes, {} classes):",
            w.name, w.flows, w.nodes, w.classes
        );
        println!(
            "  first iteration : baseline {:>10} ns, incremental {:>10} ns (ratio {:.2})",
            w.baseline.first_iteration_ns, w.incremental.first_iteration_ns, w.first_iteration_ratio
        );
        println!(
            "  near converged  : baseline {:>10} ns, incremental {:>10} ns (speedup {:.2}x)",
            w.baseline.near_converged_ns, w.incremental.near_converged_ns, w.near_converged_speedup
        );
        println!(
            "  warm all-dirty  : {:>10} ns (Off mode with persistent executor state)",
            w.warm_all_dirty_ns
        );
        for t in &w.threads_sweep {
            println!(
                "  incremental near-converged @ {} thread(s): {:>10} ns",
                t.threads, t.near_converged_ns
            );
        }
    }
    for r in &report.thread_ratio {
        println!(
            "{} ({} flows, {} nodes, {} classes):",
            r.name, r.flows, r.nodes, r.classes
        );
        println!(
            "  near converged  : sequential {:>10} ns, pooled({}) {:>10} ns (ratio {:.2}x)",
            r.sequential_ns, r.workers, r.pooled_ns, r.thread_ratio
        );
    }
    for n in &report.numerics {
        println!(
            "{} numerics ({} flows, {} nodes, {} classes):",
            n.name, n.flows, n.nodes, n.classes
        );
        println!(
            "  near converged  : strict {:>10} ns, vectorized {:>10} ns (ratio {:.2}x)",
            n.strict_ns, n.vectorized_ns, n.vector_ratio
        );
    }
    for r in &report.reliability {
        println!(
            "{} reliability ({} flows, {} nodes, {} links):",
            r.name, r.flows, r.nodes, r.links
        );
        println!(
            "  near converged  : off {:>10} ns, joint strict {:>10} ns (overhead {:.2}x), \
             joint vectorized {:>10} ns (ratio {:.2}x)",
            r.off_ns, r.strict_ns, r.joint_overhead, r.vectorized_ns, r.vector_ratio
        );
    }
}
