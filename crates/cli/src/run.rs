//! Execution of parsed CLI commands.

use crate::commands::{
    AnnealCmd, BenchCmd, Command, CompareCmd, GammaArg, IncrementalArg, InfoCmd, LintCmd,
    NumericsArg, ReliabilityArg, SimulateCmd, SolveCmd, ThreadsArg, WorkloadCmd, WorkloadRef,
};
use lrgp::{
    Engine, GammaMode, IncrementalMode, LrgpConfig, Numerics, Parallelism, Reliability,
    TraceConfig,
};
use lrgp_anneal::{sweep, AnnealConfig};
use lrgp_model::io::ProblemFile;
use lrgp_model::workloads::{self, paper_workload};
use lrgp_model::{AllocationReport, Problem, UtilityShape};
use lrgp_overlay::{
    run_asynchronous, run_synchronous, AsyncConfig, LatencyModel, SimTime, Topology,
};
use std::error::Error;

type CliResult = Result<(), Box<dyn Error>>;

/// Executes a parsed command.
pub fn run(command: Command) -> CliResult {
    match command {
        Command::Workload(c) => workload(c),
        Command::Solve(c) => solve(c),
        Command::Bench(c) => bench(c),
        Command::Anneal(c) => anneal_cmd(c),
        Command::Compare(c) => compare(c),
        Command::Simulate(c) => simulate(c),
        Command::Info(c) => info(c),
        Command::Lint(c) => lint(c),
        Command::Help => unreachable!("handled in main"),
    }
}

fn lint(cmd: LintCmd) -> CliResult {
    if cmd.list_rules {
        for rule in lrgp_lint::RULES {
            println!("{}", rule.id);
            println!("  flags:     {}", rule.summary);
            println!("  protects:  {}", rule.invariant);
        }
        println!(
            "\nsuppress with: // lrgp-lint: allow(<rule>, reason = \"...\") \
             (covers its line and the next code line)"
        );
        return Ok(());
    }
    if let Some(id) = &cmd.explain {
        let rule = lrgp_lint::RULES
            .iter()
            .find(|r| r.id == id.as_str())
            .ok_or_else(|| format!("lint: unknown rule '{id}' (see --list-rules)"))?;
        println!("{}", rule.id);
        println!("  flags:     {}", rule.summary);
        println!("  protects:  {}\n", rule.invariant);
        println!("{}", rule.explain);
        return Ok(());
    }
    let roots = if cmd.paths.is_empty() {
        vec![std::path::PathBuf::from(".")]
    } else {
        cmd.paths
    };
    if cmd.fix {
        let outcome = lrgp_lint::fix_paths(&roots)?;
        eprintln!(
            "lrgp-lint: applied {} fix edit(s) across {} file(s)",
            outcome.edits_applied, outcome.files_changed
        );
    }
    let only = match &cmd.changed {
        None => None,
        Some(base) => Some(lrgp_lint::changed_labels(base)?),
    };
    let report = lrgp_lint::lint_paths_filtered(&roots, only.as_ref())?;
    if let Some(path) = &cmd.out {
        std::fs::write(path, report.to_json())?;
    }
    if cmd.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if cmd.deny && !report.is_clean() {
        return Err(format!(
            "lint: {} unsuppressed finding(s) with --deny",
            report.findings.len()
        )
        .into());
    }
    Ok(())
}

fn load(workload: &WorkloadRef) -> Result<Problem, Box<dyn Error>> {
    match workload {
        WorkloadRef::Base => Ok(workloads::base_workload()),
        WorkloadRef::File(path) => Ok(ProblemFile::load(path)?.problem),
    }
}

fn shape_of(name: &str) -> UtilityShape {
    match name {
        "pow25" => UtilityShape::Pow25,
        "pow50" => UtilityShape::Pow50,
        "pow75" => UtilityShape::Pow75,
        _ => UtilityShape::Log,
    }
}

fn workload(cmd: WorkloadCmd) -> CliResult {
    let problem = paper_workload(shape_of(&cmd.shape), cmd.system_copies, cmd.cnode_copies);
    let description = format!(
        "paper workload: shape {}, {} system copies, {} c-node copies",
        cmd.shape, cmd.system_copies, cmd.cnode_copies
    );
    println!(
        "{}: {} flows, {} classes, {} nodes, demand {}",
        description,
        problem.num_flows(),
        problem.num_classes(),
        problem.num_nodes(),
        problem.total_demand()
    );
    ProblemFile::new(description, problem).save(&cmd.output)?;
    println!("written to {}", cmd.output.display());
    Ok(())
}

fn solve(cmd: SolveCmd) -> CliResult {
    let problem = load(&cmd.workload)?;
    let gamma = match cmd.gamma {
        GammaArg::Adaptive => GammaMode::adaptive(),
        GammaArg::Fixed(g) => GammaMode::fixed(g),
    };
    let parallelism = match cmd.threads {
        ThreadsArg::Sequential => Parallelism::Sequential,
        ThreadsArg::Auto => Parallelism::Auto,
        ThreadsArg::Count(n) => Parallelism::Threads(n),
    };
    let incremental = match cmd.incremental {
        IncrementalArg::Off => IncrementalMode::Off,
        IncrementalArg::On => IncrementalMode::On,
        IncrementalArg::Auto => IncrementalMode::Auto,
    };
    let numerics = match cmd.numerics {
        NumericsArg::Strict => Numerics::Strict,
        NumericsArg::Vectorized => Numerics::Vectorized,
    };
    let reliability = match cmd.reliability {
        ReliabilityArg::Off => Reliability::Off,
        ReliabilityArg::Joint => Reliability::Joint,
    };
    if reliability == Reliability::Joint && problem.reliability().is_none() {
        println!(
            "note: --reliability joint requested but the workload carries no \
             reliability spec; solving rate-only"
        );
    }
    let config = LrgpConfig {
        gamma,
        parallelism,
        incremental,
        numerics,
        reliability,
        trace: TraceConfig::default(),
        ..LrgpConfig::default()
    };
    let mut engine = Engine::new(problem.clone(), config);
    if parallelism != Parallelism::Sequential {
        println!("sharded engine: {} worker thread(s)", engine.effective_workers());
    }
    let outcome = engine.run_until_converged(cmd.iterations);
    match outcome.converged_at {
        Some(k) => println!("converged after {k} iterations (0.1% amplitude criterion)"),
        None => println!("ran {} iterations without meeting the criterion", outcome.iterations),
    }
    println!("total utility: {:.0}", outcome.utility);
    let allocation = engine.allocation();
    let report = AllocationReport::new(&problem, &allocation);
    println!(
        "admitted {:.0}/{} consumers; Jain fairness {:.3}; {} node(s) ≥95% utilized",
        report.total_admitted,
        report.total_demanded,
        report.jain_admission_fairness,
        report.saturated_nodes(0.95).len()
    );
    let joint = reliability == Reliability::Joint && problem.reliability().is_some();
    for flow in problem.flow_ids() {
        if joint {
            println!(
                "  {flow}: rate {:.1}, reliability {:.4}",
                allocation.rate(flow),
                engine.rhos()[flow.index()]
            );
        } else {
            println!("  {flow}: rate {:.1}", allocation.rate(flow));
        }
    }
    if joint {
        println!("reliability utility share: {:.1}", engine.reliability_utility());
    }
    if let Some(path) = &cmd.trace {
        let values = engine.trace().utility.values();
        let mut csv = String::from("iteration,utility\n");
        for (i, v) in values.iter().enumerate() {
            csv.push_str(&format!("{},{v}\n", i + 1));
        }
        std::fs::write(path, csv)?;
        println!("utility trace written to {}", path.display());
    }
    if let Some(path) = &cmd.save {
        ProblemFile::new("solved by lrgp-cli", problem)
            .with_allocation(allocation)
            .save(path)?;
        println!("solution written to {}", path.display());
    }
    Ok(())
}

fn bench(cmd: BenchCmd) -> CliResult {
    let report = crate::bench::run_bench(cmd.quick);
    crate::bench::print_report(&report);
    if cmd.json {
        std::fs::write(&cmd.output, serde_json::to_string_pretty(&report)?)?;
        println!("report written to {}", cmd.output.display());
    }
    if let Some(min) = cmd.min_speedup {
        // The large workload is where the dirty-set path is meant to pay;
        // the paper-scale workload is bookkeeping-bound, so it is exempt.
        let large = report
            .workloads
            .iter()
            .filter(|w| w.name.starts_with("large"))
            .min_by(|a, b| a.near_converged_speedup.total_cmp(&b.near_converged_speedup));
        match large {
            Some(w) if w.near_converged_speedup < min => {
                return Err(format!(
                    "bench: {} near-converged incremental speedup {:.2}x is below the \
                     --min-speedup floor {min}x",
                    w.name, w.near_converged_speedup
                )
                .into());
            }
            Some(w) => println!(
                "speedup floor met: {} at {:.2}x (≥ {min}x)",
                w.name, w.near_converged_speedup
            ),
            None => return Err("bench: no large workload to check --min-speedup against".into()),
        }
    }
    if let Some(min) = cmd.min_thread_ratio {
        // The crossover-scale workload is where the pooled Threads path
        // must not lose to the sequential reference.
        let worst = report
            .thread_ratio
            .iter()
            .min_by(|a, b| a.thread_ratio.total_cmp(&b.thread_ratio));
        match worst {
            Some(r) if r.thread_ratio < min => {
                return Err(format!(
                    "bench: {} pooled-threads ratio {:.2}x ({} workers) is below the \
                     --min-thread-ratio floor {min}x",
                    r.name, r.thread_ratio, r.workers
                )
                .into());
            }
            Some(r) => println!(
                "thread-ratio floor met: {} at {:.2}x with {} worker(s) (≥ {min}x)",
                r.name, r.thread_ratio, r.workers
            ),
            None => {
                return Err(
                    "bench: no crossover workload to check --min-thread-ratio against".into()
                )
            }
        }
    }
    if let Some(min) = cmd.min_vector_ratio {
        // The crossover-scale workload is where the lane-batched kernels
        // and cohort fast paths must pay; paper-scale entries are context
        // only (their flows sit below one lane, where Vectorized
        // degenerates to the strict code) and are exempt.
        let worst = report
            .numerics
            .iter()
            .filter(|n| n.name.starts_with("huge"))
            .min_by(|a, b| a.vector_ratio.total_cmp(&b.vector_ratio));
        match worst {
            Some(n) if n.vector_ratio < min => {
                return Err(format!(
                    "bench: {} vectorized-numerics ratio {:.2}x is below the \
                     --min-vector-ratio floor {min}x",
                    n.name, n.vector_ratio
                )
                .into());
            }
            Some(n) => println!(
                "vector-ratio floor met: {} at {:.2}x (≥ {min}x)",
                n.name, n.vector_ratio
            ),
            None => {
                return Err(
                    "bench: no crossover workload to check --min-vector-ratio against".into()
                )
            }
        }
    }
    Ok(())
}

fn anneal_cmd(cmd: AnnealCmd) -> CliResult {
    let problem = load(&cmd.workload)?;
    let config = AnnealConfig::paper(cmd.temperature, cmd.steps, cmd.seed);
    let outcome = lrgp_anneal::anneal(&problem, &config);
    println!(
        "simulated annealing: best utility {:.0} ({} steps, {} accepted, {:.2?})",
        outcome.best_utility, outcome.steps, outcome.accepted, outcome.elapsed
    );
    Ok(())
}

fn compare(cmd: CompareCmd) -> CliResult {
    let problem = load(&cmd.workload)?;
    let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
    let lrgp_out = engine.run_until_converged(400);
    println!(
        "LRGP: utility {:.0} ({} iterations)",
        lrgp_out.utility,
        lrgp_out.converged_at.map(|k| k.to_string()).unwrap_or_else(|| "400+".into())
    );
    let runs = sweep(&problem, &[5.0, 10.0, 50.0, 100.0], &[cmd.steps], cmd.seed);
    let best = &runs[0];
    println!(
        "SA best of {} runs: utility {:.0} (T0 = {}, {} steps, {:.2?})",
        runs.len(),
        best.outcome.best_utility,
        best.start_temperature,
        best.total_steps,
        best.outcome.elapsed
    );
    let increase = (lrgp_out.utility - best.outcome.best_utility)
        / best.outcome.best_utility.max(f64::MIN_POSITIVE)
        * 100.0;
    println!("LRGP utility increase over SA: {increase:+.2}%");
    Ok(())
}

fn simulate(cmd: SimulateCmd) -> CliResult {
    let problem = load(&cmd.workload)?;
    let topology = Topology::from_problem(
        &problem,
        LatencyModel::Uniform { latency: SimTime::from_millis(cmd.latency_ms) },
        SimTime::from_micros(200),
    );
    if cmd.asynchronous {
        let out = run_asynchronous(
            &problem,
            &topology,
            AsyncConfig { duration: SimTime::from_secs(cmd.amount), ..AsyncConfig::default() },
        );
        println!(
            "asynchronous protocol: {} simulated, {} messages ({} lost), final utility {:.0}",
            out.duration, out.messages, out.dropped, out.final_utility
        );
    } else {
        let out = run_synchronous(&problem, &topology, LrgpConfig::default(), cmd.amount as usize);
        println!(
            "synchronous protocol: {} rounds of {} each, {} messages, final utility {:.0}",
            out.utility.len(),
            out.round_duration,
            out.messages,
            out.utility.last().unwrap_or(0.0)
        );
    }
    Ok(())
}

fn info(cmd: InfoCmd) -> CliResult {
    match &cmd.workload {
        WorkloadRef::Base => {
            let p = workloads::base_workload();
            describe("built-in base workload", &p, None);
        }
        WorkloadRef::File(path) => {
            let file = ProblemFile::load(path)?;
            describe(&file.description, &file.problem, file.allocation.as_ref());
        }
    }
    Ok(())
}

fn describe(description: &str, problem: &Problem, allocation: Option<&lrgp_model::Allocation>) {
    println!("{description}");
    println!(
        "  {} flows, {} classes, {} nodes, {} links, demand {} consumers",
        problem.num_flows(),
        problem.num_classes(),
        problem.num_nodes(),
        problem.num_links(),
        problem.total_demand()
    );
    if let Some(a) = allocation {
        let report = AllocationReport::new(problem, a);
        let feasible = a.is_feasible(problem, 1e-6);
        println!(
            "  bundled allocation: utility {:.0}, admitted {:.0}, feasible: {feasible}",
            report.total_utility, report.total_admitted
        );
    }
}
