//! Regression tests for the HashMap → BTreeMap conversion flagged by
//! `lrgp-lint` (`hash-order-iteration`): topology serialization and
//! comparison must not depend on the order entries were inserted in.
//!
//! The round-trip test is the sharp one: `Topology::from_problem` inserts
//! latencies in draw order, while deserialization inserts them in JSON
//! document order — two genuinely different insertion histories that must
//! serialize to identical bytes.

use lrgp_overlay::sim::SimTime;
use lrgp_overlay::topology::{LatencyModel, Topology};
use lrgp_overlay::tree::TreeWorkload;

fn model() -> LatencyModel {
    LatencyModel::RandomUniform {
        min: SimTime::from_millis(1),
        max: SimTime::from_millis(20),
        seed: 7,
    }
}

#[test]
fn topology_serialization_is_insertion_order_independent() {
    let instance = TreeWorkload::default().build();
    let built = Topology::from_problem(&instance.problem, model(), SimTime::from_micros(250));
    let bytes = serde_json::to_string(&built).expect("serialize");

    // Different insertion history: entries arrive in document order.
    let round_tripped: Topology = serde_json::from_str(&bytes).expect("deserialize");
    assert_eq!(built, round_tripped);
    assert_eq!(bytes, serde_json::to_string(&round_tripped).expect("serialize"));
}

#[test]
fn rebuilt_topologies_compare_and_serialize_identically() {
    let instance = TreeWorkload::default().build();
    let a = Topology::from_problem(&instance.problem, model(), SimTime::from_micros(250));
    let b = Topology::from_problem(&instance.problem, model(), SimTime::from_micros(250));
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).expect("serialize"),
        serde_json::to_string(&b).expect("serialize"),
    );
    assert_eq!(a.max_rtt(), b.max_rtt());
}
