//! Property-based tests for the discrete-event scheduler: ordering,
//! FIFO-stability and conservation under arbitrary schedules.

use lrgp_overlay::sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, and every scheduled
    /// event pops exactly once.
    #[test]
    fn pops_are_time_ordered_and_conservative(
        times in proptest::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        prop_assert_eq!(q.pending(), times.len());
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            prop_assert_eq!(t, SimTime::from_micros(times[id]));
            last = t;
            popped.push(id);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// Among equal timestamps, insertion order is preserved (FIFO).
    #[test]
    fn equal_times_pop_fifo(
        groups in proptest::collection::vec((0u64..50, 1usize..6), 1..20)
    ) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0;
        for (t, n) in groups {
            for _ in 0..n {
                q.schedule(SimTime::from_micros(t), seq);
                expected.push((t, seq));
                seq += 1;
            }
        }
        expected.sort_by_key(|&(t, s)| (t, s));
        let mut got = Vec::new();
        while let Some((t, id)) = q.pop() {
            got.push((t.as_micros(), id));
        }
        prop_assert_eq!(got, expected);
    }

    /// `run` with a horizon handles exactly the events at or before it and
    /// leaves the rest intact.
    #[test]
    fn horizon_splits_the_schedule(
        times in proptest::collection::vec(0u64..1000, 1..100),
        horizon in 0u64..1000,
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_micros(t), t);
        }
        let expected_before = times.iter().filter(|&&t| t <= horizon).count() as u64;
        let handled = q.run(SimTime::from_micros(horizon), u64::MAX, |_, _, _| {});
        prop_assert_eq!(handled, expected_before);
        prop_assert_eq!(q.pending(), times.len() - expected_before as usize);
    }
}
