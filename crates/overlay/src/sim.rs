//! Discrete-event simulation core.
//!
//! A minimal, deterministic event engine: virtual microsecond clock, a
//! priority queue of timestamped events with FIFO tie-breaking, and a
//! driver loop. The distributed LRGP protocol ([`crate::protocol`]) and the
//! message plane ([`crate::plane`]) are both built on it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Virtual time in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with seq as
        // the FIFO tiebreaker.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event scheduler.
///
/// Events with equal timestamps fire in insertion order, so simulations are
/// reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use lrgp_overlay::sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t, SimTime::from_millis(1));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), now: SimTime::ZERO, next_seq: 0, processed: 0 }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.at;
            self.processed += 1;
            (s.at, s.payload)
        })
    }

    /// Runs `handler` on every event until the queue drains, the clock
    /// passes `horizon`, or `max_events` fire. The handler may schedule new
    /// events through the queue it is handed. Returns the number of events
    /// handled.
    pub fn run<F: FnMut(&mut Self, SimTime, E)>(
        &mut self,
        horizon: SimTime,
        max_events: u64,
        mut handler: F,
    ) -> u64 {
        let mut handled = 0;
        while handled < max_events {
            // Peek: stop *before* handling an event beyond the horizon.
            match self.heap.peek() {
                Some(s) if s.at <= horizon => {}
                _ => break,
            }
            // lrgp-lint: allow(library-unwrap, reason = "the event was just peeked, so pop cannot fail")
            let (t, e) = self.pop().expect("peeked event must pop");
            handler(self, t, e);
            handled += 1;
        }
        handled
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_and_conversions() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs(2) + SimTime::from_millis(500), SimTime::from_micros(2_500_000));
        assert_eq!(SimTime::from_secs(2) - SimTime::from_secs(3), SimTime::ZERO); // saturating
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(t.to_string(), "1.500000s");
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn run_respects_horizon() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule(SimTime::from_micros(i * 10), i);
        }
        let mut seen = Vec::new();
        let handled = q.run(SimTime::from_micros(45), u64::MAX, |_, _, e| seen.push(e));
        assert_eq!(handled, 4);
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.pending(), 6);
        // Events past the horizon remain schedulable/poppable.
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn run_respects_event_budget() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        let handled = q.run(SimTime::from_secs(1), 3, |_, _, _| {});
        assert_eq!(handled, 3);
        assert_eq!(q.pending(), 7);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        q.run(SimTime::from_micros(100), u64::MAX, |q, _, gen| {
            count += 1;
            if gen < 5 {
                q.schedule_after(SimTime::from_micros(10), gen + 1);
            }
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "a");
        q.pop();
        q.schedule_after(SimTime::from_micros(10), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(110));
    }
}
