//! Multi-hop dissemination trees.
//!
//! The paper's evaluation workloads have no link bottlenecks and collapse
//! topology to "which consumer nodes does each flow reach" (§4.1, fn. 3).
//! Real event infrastructures route flows over *trees* of brokers, where
//! interior links carry aggregated traffic and can saturate. This module
//! builds such tree-shaped problems — per-flow routes from the source
//! through shared router nodes to leaf consumer nodes, with per-hop link
//! cost entries — together with a matching [`Topology`] for the protocol
//! simulator, so joint link-and-node pricing can be exercised end to end.

use crate::sim::SimTime;
use crate::topology::Topology;
use lrgp_model::{LinkId, NodeId, Problem, ProblemBuilder, RateBounds, UtilityShape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Specification of a balanced dissemination-tree workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeWorkload {
    /// Number of flows (each gets its own source attached to the root).
    pub flows: usize,
    /// Router fan-out per level.
    pub branching: usize,
    /// Number of router levels between the root and the leaves (0 = leaves
    /// attach to the root directly).
    pub depth: usize,
    /// Consumer classes per leaf per flow.
    pub classes_per_leaf: usize,
    /// Capacity of every link.
    pub link_capacity: f64,
    /// Capacity of every node.
    pub node_capacity: f64,
    /// Link cost `L` per unit rate on every traversed edge.
    pub link_cost: f64,
    /// Flow-node cost `F` at every node a flow reaches.
    pub flow_node_cost: f64,
    /// Consumer cost `G`.
    pub consumer_cost: f64,
    /// Maximum population per class.
    pub max_population: u32,
    /// Utility shape (rank fixed at 10·(1 + class index within leaf)).
    pub shape: UtilityShape,
    /// Rate bounds shared by all flows.
    pub rate_bounds: (f64, f64),
    /// One-way latency per tree edge in the protocol topology.
    pub edge_latency: SimTime,
}

impl Default for TreeWorkload {
    fn default() -> Self {
        Self {
            flows: 2,
            branching: 2,
            depth: 2,
            classes_per_leaf: 2,
            link_capacity: 1e5,
            node_capacity: 9e5,
            flow_node_cost: 3.0,
            link_cost: 1.0,
            consumer_cost: 19.0,
            max_population: 200,
            shape: UtilityShape::Log,
            rate_bounds: (10.0, 1000.0),
            edge_latency: SimTime::from_millis(5),
        }
    }
}

/// A built tree workload: the problem, the per-flow routes, and the node
/// roles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeInstance {
    /// The optimization problem (with link constraints on every edge).
    pub problem: Problem,
    /// The root broker all flows enter through.
    pub root: NodeId,
    /// Interior router nodes, level by level.
    pub routers: Vec<Vec<NodeId>>,
    /// Leaf consumer nodes.
    pub leaves: Vec<NodeId>,
    /// Tree edges as (parent, child, link id).
    pub edges: Vec<(NodeId, NodeId, LinkId)>,
}

impl TreeWorkload {
    /// Builds the problem: every flow is injected at its own source node,
    /// enters the shared root, and is disseminated down the full tree to
    /// every leaf, paying `link_cost` per edge and `flow_node_cost` at
    /// every node. Classes attach at the leaves.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate specification (no flows, zero branching, or
    /// invalid rate bounds).
    pub fn build(&self) -> TreeInstance {
        assert!(self.flows > 0, "need at least one flow");
        assert!(self.branching > 0, "branching must be positive");
        assert!(self.classes_per_leaf > 0, "need at least one class per leaf");
        let bounds = RateBounds::new(self.rate_bounds.0, self.rate_bounds.1)
            // lrgp-lint: allow(library-unwrap, reason = "builder asserts its own spec; invalid bounds are caller bugs")
            .expect("tree workload rate bounds must be valid");

        let mut b = ProblemBuilder::new();
        let root = b.add_labeled_node(self.node_capacity, "root");
        // Router levels.
        let mut routers: Vec<Vec<NodeId>> = Vec::new();
        let mut previous_level = vec![root];
        for level in 0..self.depth {
            let mut this_level = Vec::new();
            for (pi, _parent) in previous_level.iter().enumerate() {
                for c in 0..self.branching {
                    let id = b.add_labeled_node(
                        self.node_capacity,
                        format!("router{level}.{pi}.{c}"),
                    );
                    this_level.push(id);
                }
            }
            routers.push(this_level.clone());
            previous_level = this_level;
        }
        // Leaves hang off the last level.
        let mut leaves = Vec::new();
        for (pi, _parent) in previous_level.iter().enumerate() {
            for c in 0..self.branching {
                leaves.push(b.add_labeled_node(self.node_capacity, format!("leaf{pi}.{c}")));
            }
        }
        // Edges: parent level → child level, in construction order.
        let mut edges: Vec<(NodeId, NodeId, LinkId)> = Vec::new();
        let mut level_pairs: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new();
        let mut parents = vec![root];
        for level in routers.iter().chain(std::iter::once(&leaves)) {
            level_pairs.push((parents.clone(), level.clone()));
            parents = level.clone();
        }
        for (parents, children) in &level_pairs {
            for (ci, &child) in children.iter().enumerate() {
                let parent = parents[ci / self.branching];
                let link = b.add_link_between(self.link_capacity, parent, child);
                edges.push((parent, child, link));
            }
        }

        // Flows: dedicated sources feeding the root, then the whole tree.
        let class_rank = |idx: usize| 10.0 * (1 + idx) as f64;
        for f in 0..self.flows {
            let src = b.add_labeled_node(self.node_capacity, format!("src{f}"));
            let src_link = b.add_link_between(self.link_capacity, src, root);
            let flow = b.add_flow(src, bounds);
            b.set_link_cost(flow, src_link, self.link_cost);
            b.set_node_cost(flow, root, self.flow_node_cost);
            for level in &routers {
                for &r in level {
                    b.set_node_cost(flow, r, self.flow_node_cost);
                }
            }
            for &(_, _, link) in &edges {
                b.set_link_cost(flow, link, self.link_cost);
            }
            for &leaf in &leaves {
                b.set_node_cost(flow, leaf, self.flow_node_cost);
                for k in 0..self.classes_per_leaf {
                    b.add_class(
                        flow,
                        leaf,
                        self.max_population,
                        self.shape.build(class_rank(k)),
                        self.consumer_cost,
                    );
                }
            }
        }
        // lrgp-lint: allow(library-unwrap, reason = "generator-built problems are structurally valid by construction")
        let problem = b.build().expect("tree workload is structurally valid");
        TreeInstance { problem, root, routers, leaves, edges }
    }

    /// Builds the protocol [`Topology`]: the source↔leaf latency is the
    /// tree-path length (number of edges from source to leaf) times
    /// [`TreeWorkload::edge_latency`].
    pub fn topology(&self, instance: &TreeInstance) -> Topology {
        // Path length from any source to any leaf: 1 (src→root) + depth + 1.
        let hops = (self.depth + 2) as u64;
        let latency = SimTime::from_micros(hops * self.edge_latency.as_micros());
        // Build pairwise map via the uniform model on the instance problem.
        Topology::from_problem(
            &instance.problem,
            crate::topology::LatencyModel::Uniform { latency },
            SimTime::from_micros(100),
        )
    }
}

/// Total leaf count of a tree spec (`branching^(depth+1)`).
pub fn leaf_count(spec: &TreeWorkload) -> usize {
    spec.branching.pow(spec.depth as u32 + 1)
}

/// Checks that `instance`'s edges form a tree spanning root → leaves (used
/// in tests; exposed for external validation of custom instances).
pub fn is_spanning_tree(instance: &TreeInstance) -> bool {
    let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &(p, c, _) in &instance.edges {
        children.entry(p).or_default().push(c);
    }
    // BFS from root must reach every leaf exactly once.
    let mut reached = Vec::new();
    let mut stack = vec![instance.root];
    while let Some(n) = stack.pop() {
        if let Some(kids) = children.get(&n) {
            for &k in kids {
                stack.push(k);
            }
        } else {
            reached.push(n);
        }
    }
    reached.sort();
    let mut leaves = instance.leaves.clone();
    leaves.sort();
    reached == leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp::{Engine, LrgpConfig};
    use lrgp_model::FlowId;

    #[test]
    fn default_tree_dimensions() {
        let spec = TreeWorkload::default();
        let inst = spec.build();
        // depth 2, branching 2: routers 2 + 4, leaves 8.
        assert_eq!(inst.routers[0].len(), 2);
        assert_eq!(inst.routers[1].len(), 4);
        assert_eq!(inst.leaves.len(), 8);
        assert_eq!(leaf_count(&spec), 8);
        // Nodes: root + 6 routers + 8 leaves + 2 sources = 17.
        assert_eq!(inst.problem.num_nodes(), 17);
        // Links: tree edges (2 + 4 + 8) + 2 source links = 16.
        assert_eq!(inst.problem.num_links(), 16);
        // Classes: 2 flows × 8 leaves × 2 = 32.
        assert_eq!(inst.problem.num_classes(), 32);
        assert!(is_spanning_tree(&inst));
    }

    #[test]
    fn every_flow_traverses_every_tree_edge() {
        let inst = TreeWorkload::default().build();
        for flow in inst.problem.flow_ids() {
            for &(_, _, link) in &inst.edges {
                assert!(inst.problem.link_cost(link, flow) > 0.0, "{flow} misses {link}");
            }
        }
    }

    #[test]
    fn lrgp_respects_link_bottlenecks_on_trees() {
        // Make the top links tight so link pricing must bite: two flows
        // share every edge, link capacity 100 with L = 1 each ⇒ r0 + r1 ≤ 100.
        let spec = TreeWorkload {
            link_capacity: 100.0,
            node_capacity: 1e9,
            rate_bounds: (1.0, 1000.0),
            ..TreeWorkload::default()
        };
        let inst = spec.build();
        let cfg = LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() };
        let mut e = Engine::new(inst.problem.clone(), cfg);
        e.run(4_000);
        let a = e.allocation();
        let report = a.check_feasibility(&inst.problem, 0.5); // tolerate residual ripple
        assert!(report.is_feasible(), "{report}");
        let total_rate: f64 = a.rates().iter().sum();
        assert!(
            total_rate <= 100.5 && total_rate > 80.0,
            "rates should pack the shared links: {total_rate}"
        );
    }

    #[test]
    fn node_constraints_still_bind_at_leaves() {
        // Roomy links, tight leaves: behaves like the paper's workloads.
        let spec = TreeWorkload {
            link_capacity: 1e9,
            node_capacity: 5e4,
            ..TreeWorkload::default()
        };
        let inst = spec.build();
        let mut e = Engine::new(inst.problem.clone(), LrgpConfig::default());
        let out = e.run_until_converged(400);
        assert!(out.utility > 0.0);
        assert!(e.allocation().is_feasible(&inst.problem, 1e-6));
        // Some leaf should be busy.
        let busiest = inst
            .leaves
            .iter()
            .map(|&n| e.allocation().node_usage(&inst.problem, n) / 5e4)
            .fold(0.0f64, f64::max);
        assert!(busiest > 0.5, "leaves underutilized: {busiest}");
    }

    #[test]
    fn topology_latency_scales_with_depth() {
        let spec = TreeWorkload::default();
        let inst = spec.build();
        let topo = spec.topology(&inst);
        // hops = depth + 2 = 4 edges × 5 ms + processing.
        let (src, peers) = Topology::flow_peers(&inst.problem, FlowId::new(0));
        let any_leaf = peers.iter().find(|n| inst.leaves.contains(n)).copied().unwrap();
        assert_eq!(topo.latency(src, any_leaf), Some(SimTime::from_millis(20)));
    }

    #[test]
    fn depth_zero_tree_attaches_leaves_to_root() {
        let spec = TreeWorkload { depth: 0, ..TreeWorkload::default() };
        let inst = spec.build();
        assert!(inst.routers.is_empty());
        assert_eq!(inst.leaves.len(), 2);
        assert!(is_spanning_tree(&inst));
    }

    #[test]
    #[should_panic(expected = "branching must be positive")]
    fn rejects_zero_branching() {
        let _ = TreeWorkload { branching: 0, ..TreeWorkload::default() }.build();
    }
}
