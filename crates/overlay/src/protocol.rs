//! The distributed LRGP protocol over the event-driven substrate.
//!
//! The paper describes LRGP as a distributed algorithm: flow sources run
//! Algorithm 1, consumer-hosting nodes run Algorithm 2, exchanging rate and
//! price messages over the overlay. This module executes that protocol on
//! the discrete-event simulator in two modes:
//!
//! * [`run_synchronous`] — staged rounds, one LRGP iteration per maximum
//!   round-trip time (§4.3: "the time to complete an iteration equals
//!   approximately the maximum round trip time between any two nodes").
//!   Produces *bit-identical* traces to the centralized
//!   [`lrgp::Engine`], messages and latencies notwithstanding — link
//!   prices included: each link's Algorithm 3 runs at an owning endpoint
//!   node and rides back to the sources inside that node's feedback.
//! * [`run_asynchronous`] — every actor ticks on its own (jittered) timer
//!   and uses the freshest feedback it has, optionally averaging the last
//!   few prices from each resource as suggested in §3.5 / the companion
//!   technical report.

use crate::sim::{EventQueue, SimTime};
use crate::topology::Topology;
use lrgp::kernel::admission::allocate_consumers;
use lrgp::gamma::GammaController;
use lrgp::kernel::price::{update_link_price, update_node_price_with_rule};
use lrgp::kernel::rate::{solve_rate, AggregateUtility};
use lrgp::{InitialRate, LrgpConfig};
use lrgp_model::{Allocation, ClassId, FlowId, LinkId, NodeId, Problem};
use lrgp_num::series::TimeSeries;
use lrgp_num::SlidingWindow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of one node's local Algorithm 2 + 3 round: the node price, its
/// class populations, and the prices of the links it owns.
type NodeRound = (f64, Vec<(ClassId, f64)>, Vec<(LinkId, f64)>);

/// A protocol message or timer event.
#[derive(Debug, Clone)]
enum Event {
    /// Begin synchronous round `k`: every source computes and sends.
    RoundStart(usize),
    /// A rate update from `flow`'s source arriving at `node` (sync: tagged
    /// with the round).
    RateArrive { node: NodeId, flow: FlowId, rate: f64, round: usize },
    /// Node feedback arriving at `flow`'s source. Besides the node's own
    /// price and the flow's populations, it carries the prices of the links
    /// this node *owns* (Algorithm 3: "link price is computed by one of the
    /// two nodes which are the endpoints of the link").
    FeedbackArrive {
        flow: FlowId,
        node: NodeId,
        price: f64,
        populations: Vec<(ClassId, f64)>,
        link_prices: Vec<(LinkId, f64)>,
    },
    /// Async: `flow`'s source recomputes and rebroadcasts its rate.
    SourceTick(FlowId),
    /// Async: `node` reruns admission and price computation.
    NodeTick(NodeId),
    /// Async: record the god's-eye utility sample.
    Sample,
}

/// Picks the node agent that runs Algorithm 3 for a link: "link price is
/// actually computed by one of the two nodes which are the endpoints of the
/// link" (paper fn. 2). The owner must *hear* the rates of every flow on
/// the link, so we prefer the downstream endpoint (which all flows reach),
/// then the upstream one, then any node that hears them all; a link whose
/// flows no node fully observes keeps its initial price (and we fall back
/// to an endpoint or node 0 purely to keep the vector total).
fn link_owner(problem: &Problem, link: LinkId) -> NodeId {
    let flows = problem.flows_on_link(link);
    let hears_all =
        |n: NodeId| flows.iter().all(|f| problem.flows_at_node(n).contains(f));
    let spec = problem.link(link);
    for candidate in [spec.to, spec.from].into_iter().flatten() {
        if hears_all(candidate) {
            return candidate;
        }
    }
    problem
        .node_ids()
        .find(|&n| !flows.is_empty() && hears_all(n))
        .or(spec.to)
        .or(spec.from)
        .unwrap_or(NodeId::new(0))
}

/// Shared mutable protocol state (the "distributed" state, kept in one
/// process for simulation).
struct ProtocolState<'p> {
    problem: &'p Problem,
    config: LrgpConfig,
    /// Rate currently chosen by each source.
    source_rates: Vec<f64>,
    /// Populations as last heard by each source (indexed by class).
    source_populations: Vec<f64>,
    /// Node price as last heard by each source, per node (dense).
    source_known_prices: Vec<f64>,
    /// Link price as last heard by the sources, per link (dense).
    source_known_link_prices: Vec<f64>,
    /// Optional per-node price averaging windows (async §3.5).
    price_windows: Option<Vec<SlidingWindow>>,
    /// Rates as last heard by each node (indexed by flow).
    node_known_rates: Vec<f64>,
    /// Current price at each node.
    node_prices: Vec<f64>,
    /// Current price of each link, maintained by its owner node.
    link_prices: Vec<f64>,
    /// Owner node of each link (the agent of Algorithm 3).
    link_owners: Vec<NodeId>,
    /// Populations decided by nodes (indexed by class).
    node_populations: Vec<f64>,
    gamma: Vec<GammaController>,
    messages_sent: u64,
}

impl<'p> ProtocolState<'p> {
    fn new(problem: &'p Problem, config: LrgpConfig, price_window: usize) -> Self {
        let initial_rate = |f: FlowId| {
            let b = problem.flow(f).bounds;
            match config.initial_rate {
                InitialRate::Max => b.max,
                InitialRate::Min => b.min,
                InitialRate::Value(v) => b.clamp(v),
            }
        };
        let rates: Vec<f64> = problem.flow_ids().map(initial_rate).collect();
        Self {
            problem,
            source_rates: rates.clone(),
            source_populations: vec![0.0; problem.num_classes()],
            source_known_prices: vec![config.initial_node_price; problem.num_nodes()],
            source_known_link_prices: vec![config.initial_link_price; problem.num_links()],
            price_windows: (price_window > 1)
                .then(|| (0..problem.num_nodes()).map(|_| SlidingWindow::new(price_window)).collect()),
            node_known_rates: rates,
            node_prices: vec![config.initial_node_price; problem.num_nodes()],
            link_prices: vec![config.initial_link_price; problem.num_links()],
            link_owners: problem.link_ids().map(|l| link_owner(problem, l)).collect(),
            node_populations: vec![0.0; problem.num_classes()],
            gamma: (0..problem.num_nodes())
                .map(|_| GammaController::new(config.gamma, config.initial_node_price))
                .collect(),
            messages_sent: 0,
            config,
        }
    }

    /// Source-side rate computation (Algorithm 1) from the source's local
    /// view of prices and populations.
    fn compute_rate(&self, flow: FlowId) -> f64 {
        let aggregate =
            AggregateUtility::for_flow(self.problem, flow, &self.source_populations);
        // PL_i from the source's last-heard link prices.
        let mut price = 0.0;
        for &(link, l_cost) in self.problem.links_of_flow(flow) {
            price += l_cost * self.source_known_link_prices[link.index()];
        }
        // PB_i from the source's last-heard prices and populations.
        for &(node, f_cost) in self.problem.nodes_of_flow(flow) {
            let mut per_rate = f_cost;
            for class in self.problem.classes_of_flow_at_node(flow, node) {
                per_rate += self.problem.class(class).consumer_cost
                    * self.source_populations[class.index()];
            }
            price += per_rate * self.source_known_prices[node.index()];
        }
        solve_rate(
            &aggregate,
            price,
            self.problem.flow(flow).bounds,
            self.source_rates[flow.index()],
        )
    }

    /// Node-side admission + price computation (Algorithm 2) from the
    /// node's local view of rates, plus Algorithm 3 for the links this node
    /// owns. Returns the node price, populations and owned-link prices.
    fn compute_node(&mut self, node: NodeId) -> NodeRound {
        let admission = allocate_consumers(
            self.problem,
            node,
            &self.node_known_rates,
            self.config.population_mode,
            self.config.admission_policy,
        );
        for &(class, n) in &admission.populations {
            self.node_populations[class.index()] = n;
        }
        let ctl = &mut self.gamma[node.index()];
        let gamma = ctl.gamma();
        let next = update_node_price_with_rule(
            self.config.node_price_rule,
            self.node_prices[node.index()],
            admission.benefit_cost,
            admission.used,
            self.problem.node(node).capacity,
            gamma,
            gamma,
        );
        ctl.observe_price(next);
        self.node_prices[node.index()] = next;
        // Algorithm 3 for owned links, from the node's view of the rates.
        let mut link_prices = Vec::new();
        for link in self.problem.link_ids() {
            if self.link_owners[link.index()] != node {
                continue;
            }
            let usage: f64 = self
                .problem
                .flows_on_link(link)
                .iter()
                .map(|&f| self.problem.link_cost(link, f) * self.node_known_rates[f.index()])
                .sum();
            let next_link = update_link_price(
                self.link_prices[link.index()],
                usage,
                self.problem.link(link).capacity,
                self.config.link_gamma,
            );
            self.link_prices[link.index()] = next_link;
            link_prices.push((link, next_link));
        }
        (next, admission.populations, link_prices)
    }

    /// Source ingests node feedback; prices optionally pass through the
    /// averaging window.
    fn ingest_feedback(
        &mut self,
        node: NodeId,
        price: f64,
        populations: &[(ClassId, f64)],
        link_prices: &[(LinkId, f64)],
    ) {
        let effective = match self.price_windows.as_mut() {
            Some(windows) => {
                let w = &mut windows[node.index()];
                w.push(price);
                w.mean().unwrap_or(price)
            }
            None => price,
        };
        self.source_known_prices[node.index()] = effective;
        for &(class, n) in populations {
            self.source_populations[class.index()] = n;
        }
        for &(link, lp) in link_prices {
            self.source_known_link_prices[link.index()] = lp;
        }
    }

    /// God's-eye utility: source-decided rates × node-decided populations.
    fn utility(&self) -> f64 {
        let mut total = 0.0;
        for class in self.problem.class_ids() {
            let n = self.node_populations[class.index()];
            if n > 0.0 {
                let spec = self.problem.class(class);
                total += n * spec.utility.value(self.source_rates[spec.flow.index()]);
            }
        }
        total
    }

    fn allocation(&self) -> Allocation {
        Allocation::from_parts(
            self.problem,
            self.source_rates.clone(),
            self.node_populations.clone(),
        )
    }
}

/// Result of a synchronous distributed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// Total utility after each round — identical to the centralized
    /// engine's trace.
    pub utility: TimeSeries,
    /// Virtual time at which the final round completed.
    pub duration: SimTime,
    /// Duration of one round (the maximum RTT).
    pub round_duration: SimTime,
    /// Protocol messages sent.
    pub messages: u64,
    /// The final allocation.
    pub allocation: Allocation,
}

/// Runs `iterations` rounds of the synchronous distributed protocol.
///
/// Each round: sources send `RateUpdate`s to every node their flow reaches;
/// a node computes as soon as it has heard from all of them, then sends
/// `NodeFeedback` back; the next round starts one maximum-RTT later, by
/// which time all feedback has arrived.
pub fn run_synchronous(
    problem: &Problem,
    topology: &Topology,
    config: LrgpConfig,
    iterations: usize,
) -> SyncOutcome {
    let mut state = ProtocolState::new(problem, config, 1);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let round_duration = {
        // Guard against zero-latency topologies: still advance time.
        let rtt = topology.max_rtt();
        if rtt == SimTime::ZERO {
            SimTime::from_micros(1)
        } else {
            rtt
        }
    };
    let mut utility = TimeSeries::new("utility");
    // Per-node count of rate messages expected per round.
    let expected: Vec<usize> =
        problem.node_ids().map(|n| problem.flows_at_node(n).len()).collect();
    let mut received: Vec<usize> = vec![0; problem.num_nodes()];
    let mut computed_in_round: Vec<bool> = vec![false; problem.num_nodes()];

    queue.schedule(SimTime::ZERO, Event::RoundStart(0));
    let mut rounds_done = 0;

    while rounds_done < iterations {
        let Some((_, event)) = queue.pop() else { break };
        match event {
            Event::RoundStart(k) => {
                received.iter_mut().for_each(|r| *r = 0);
                computed_in_round.iter_mut().for_each(|c| *c = false);
                for flow in problem.flow_ids() {
                    let rate = state.compute_rate(flow);
                    state.source_rates[flow.index()] = rate;
                    let (src, peers) = Topology::flow_peers(problem, flow);
                    for peer in peers {
                        state.messages_sent += 1;
                        queue.schedule_after(
                            topology.delay(src, peer),
                            Event::RateArrive { node: peer, flow, rate, round: k },
                        );
                    }
                    // A flow may also reach its own source node.
                    if problem.flows_at_node(src).contains(&flow) {
                        state.messages_sent += 1;
                        queue.schedule_after(
                            topology.processing_delay(),
                            Event::RateArrive { node: src, flow, rate, round: k },
                        );
                    }
                }
                // Nodes with no flows never compute; mark them done.
                for node in problem.node_ids() {
                    if expected[node.index()] == 0 {
                        computed_in_round[node.index()] = true;
                    }
                }
            }
            Event::RateArrive { node, flow, rate, round } => {
                state.node_known_rates[flow.index()] = rate;
                received[node.index()] += 1;
                if received[node.index()] == expected[node.index()]
                    && !computed_in_round[node.index()]
                {
                    computed_in_round[node.index()] = true;
                    let (price, populations, link_prices) = state.compute_node(node);
                    for &f in problem.flows_at_node(node) {
                        let src = problem.flow(f).source;
                        let relevant: Vec<(ClassId, f64)> = populations
                            .iter()
                            .copied()
                            .filter(|(c, _)| problem.class(*c).flow == f)
                            .collect();
                        let relevant_links: Vec<(LinkId, f64)> = link_prices
                            .iter()
                            .copied()
                            .filter(|(l, _)| problem.flows_on_link(*l).contains(&f))
                            .collect();
                        state.messages_sent += 1;
                        let delay = if src == node {
                            topology.processing_delay()
                        } else {
                            topology.delay(node, src)
                        };
                        queue.schedule_after(
                            delay,
                            Event::FeedbackArrive {
                                flow: f,
                                node,
                                price,
                                populations: relevant,
                                link_prices: relevant_links,
                            },
                        );
                    }
                    if computed_in_round.iter().all(|&c| c) {
                        // Round complete: record utility, schedule the next
                        // round one RTT after this one started.
                        utility.push(state.utility());
                        rounds_done += 1;
                        if rounds_done < iterations {
                            let next_start =
                                SimTime::from_micros(round_duration.as_micros() * (round + 1) as u64);
                            queue.schedule(
                                next_start.max(queue.now()),
                                Event::RoundStart(round + 1),
                            );
                        }
                    }
                }
            }
            Event::FeedbackArrive { node, price, populations, link_prices, .. } => {
                state.ingest_feedback(node, price, &populations, &link_prices);
            }
            // Async-only events never occur here.
            Event::SourceTick(_) | Event::NodeTick(_) | Event::Sample => unreachable!(),
        }
    }
    // Drain any in-flight feedback so the final allocation is consistent.
    while let Some((_, event)) = queue.pop() {
        if let Event::FeedbackArrive { node, price, populations, link_prices, .. } = event {
            state.ingest_feedback(node, price, &populations, &link_prices);
        }
    }

    SyncOutcome {
        utility,
        duration: queue.now(),
        round_duration,
        messages: state.messages_sent,
        allocation: state.allocation(),
    }
}

/// Configuration of the asynchronous protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Core LRGP parameters (γ control, admission, initial state).
    pub lrgp: LrgpConfig,
    /// Mean period between a source's recomputations.
    pub source_period: SimTime,
    /// Mean period between a node's recomputations.
    pub node_period: SimTime,
    /// Uniform jitter applied to every tick, as a fraction of the period
    /// (0.0 = strictly periodic).
    pub jitter: f64,
    /// Number of recent prices from each node averaged at the source
    /// (1 = use the latest price only; >1 enables §3.5's smoothing).
    pub price_window: usize,
    /// Probability that any single protocol message is lost in transit
    /// (0.0 = reliable). The paper's §3.5 averaging exists precisely to
    /// "allow for missing prices or rates".
    pub loss: f64,
    /// Interval between utility samples in the recorded trace.
    pub sample_period: SimTime,
    /// Total simulated time.
    pub duration: SimTime,
    /// RNG seed for tick jitter.
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self {
            lrgp: LrgpConfig::default(),
            source_period: SimTime::from_millis(25),
            node_period: SimTime::from_millis(25),
            jitter: 0.2,
            loss: 0.0,
            price_window: 3,
            sample_period: SimTime::from_millis(25),
            duration: SimTime::from_secs(10),
            seed: 0,
        }
    }
}

/// Result of an asynchronous distributed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncOutcome {
    /// Utility sampled every [`AsyncConfig::sample_period`].
    pub utility: TimeSeries,
    /// Virtual end time.
    pub duration: SimTime,
    /// Protocol messages sent.
    pub messages: u64,
    /// Protocol messages lost in transit.
    pub dropped: u64,
    /// Final allocation (source rates × node populations).
    pub allocation: Allocation,
    /// Final utility.
    pub final_utility: f64,
}

/// Runs the asynchronous protocol: sources and nodes tick independently
/// with jittered periods and act on the freshest (optionally averaged)
/// state they have heard.
pub fn run_asynchronous(
    problem: &Problem,
    topology: &Topology,
    config: AsyncConfig,
) -> AsyncOutcome {
    assert!(config.price_window >= 1, "price window must be at least 1");
    assert!((0.0..1.0).contains(&config.jitter), "jitter must be in [0, 1)");
    assert!((0.0..1.0).contains(&config.loss), "loss probability must be in [0, 1)");
    let mut state = ProtocolState::new(problem, config.lrgp, config.price_window);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut utility = TimeSeries::new("utility");
    let mut dropped = 0u64;

    let jittered = |period: SimTime, rng: &mut StdRng, jitter: f64| {
        if jitter == 0.0 {
            period
        } else {
            let base = period.as_micros() as f64;
            let lo = (base * (1.0 - jitter)).max(1.0);
            let hi = base * (1.0 + jitter);
            SimTime::from_micros(rng.gen_range(lo..=hi) as u64)
        }
    };

    // Stagger initial ticks uniformly inside one period.
    for flow in problem.flow_ids() {
        let offset =
            SimTime::from_micros(rng.gen_range(0..=config.source_period.as_micros()));
        queue.schedule(offset, Event::SourceTick(flow));
    }
    for node in problem.node_ids() {
        if problem.flows_at_node(node).is_empty() {
            continue;
        }
        let offset = SimTime::from_micros(rng.gen_range(0..=config.node_period.as_micros()));
        queue.schedule(offset, Event::NodeTick(node));
    }
    queue.schedule(config.sample_period, Event::Sample);

    while let Some((t, event)) = {
        // Stop pulling events past the horizon.
        if queue.is_empty() {
            None
        } else {
            queue.pop()
        }
    } {
        if t > config.duration {
            break;
        }
        match event {
            Event::SourceTick(flow) => {
                let rate = state.compute_rate(flow);
                state.source_rates[flow.index()] = rate;
                let (src, peers) = Topology::flow_peers(problem, flow);
                for peer in peers {
                    state.messages_sent += 1;
                    if config.loss > 0.0 && rng.gen::<f64>() < config.loss {
                        dropped += 1;
                        continue;
                    }
                    queue.schedule_after(
                        topology.delay(src, peer),
                        Event::RateArrive { node: peer, flow, rate, round: 0 },
                    );
                }
                if problem.flows_at_node(src).contains(&flow) {
                    state.messages_sent += 1;
                    if config.loss > 0.0 && rng.gen::<f64>() < config.loss {
                        dropped += 1;
                    } else {
                        queue.schedule_after(
                            topology.processing_delay(),
                            Event::RateArrive { node: src, flow, rate, round: 0 },
                        );
                    }
                }
                queue.schedule_after(
                    jittered(config.source_period, &mut rng, config.jitter),
                    Event::SourceTick(flow),
                );
            }
            Event::NodeTick(node) => {
                let (price, populations, link_prices) = state.compute_node(node);
                for &f in problem.flows_at_node(node) {
                    let src = problem.flow(f).source;
                    let relevant: Vec<(ClassId, f64)> = populations
                        .iter()
                        .copied()
                        .filter(|(c, _)| problem.class(*c).flow == f)
                        .collect();
                    let relevant_links: Vec<(LinkId, f64)> = link_prices
                        .iter()
                        .copied()
                        .filter(|(l, _)| problem.flows_on_link(*l).contains(&f))
                        .collect();
                    state.messages_sent += 1;
                    if config.loss > 0.0 && rng.gen::<f64>() < config.loss {
                        dropped += 1;
                        continue;
                    }
                    let delay = if src == node {
                        topology.processing_delay()
                    } else {
                        topology.delay(node, src)
                    };
                    queue.schedule_after(
                        delay,
                        Event::FeedbackArrive {
                            flow: f,
                            node,
                            price,
                            populations: relevant,
                            link_prices: relevant_links,
                        },
                    );
                }
                queue.schedule_after(
                    jittered(config.node_period, &mut rng, config.jitter),
                    Event::NodeTick(node),
                );
            }
            Event::RateArrive { node: _, flow, rate, .. } => {
                state.node_known_rates[flow.index()] = rate;
            }
            Event::FeedbackArrive { flow, node, price, populations, link_prices } => {
                debug_assert!(
                    populations.iter().all(|(c, _)| problem.class(*c).flow == flow),
                    "feedback must carry only the addressed flow's classes"
                );
                state.ingest_feedback(node, price, &populations, &link_prices);
            }
            Event::Sample => {
                utility.push(state.utility());
                queue.schedule_after(config.sample_period, Event::Sample);
            }
            Event::RoundStart(_) => unreachable!("sync-only event"),
        }
    }

    let final_utility = state.utility();
    AsyncOutcome {
        utility,
        duration: config.duration,
        messages: state.messages_sent,
        dropped,
        allocation: state.allocation(),
        final_utility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LatencyModel;
    use lrgp::{Engine, LrgpConfig};
    use lrgp_model::workloads::base_workload;

    fn topo(problem: &Problem) -> Topology {
        Topology::from_problem(
            problem,
            LatencyModel::Uniform { latency: SimTime::from_millis(10) },
            SimTime::from_micros(200),
        )
    }

    #[test]
    fn synchronous_protocol_matches_centralized_engine_exactly() {
        let p = base_workload();
        let cfg = LrgpConfig::default();
        let sync = run_synchronous(&p, &topo(&p), cfg, 60);
        let mut engine = Engine::new(p.clone(), cfg);
        engine.run(60);
        assert_eq!(sync.utility.len(), 60);
        for (k, (a, b)) in sync
            .utility
            .values()
            .iter()
            .zip(engine.trace().utility.values())
            .enumerate()
        {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "round {k}: distributed {a} vs centralized {b}"
            );
        }
    }

    #[test]
    fn synchronous_round_duration_is_max_rtt() {
        let p = base_workload();
        let t = topo(&p);
        let sync = run_synchronous(&p, &t, LrgpConfig::default(), 10);
        assert_eq!(sync.round_duration, t.max_rtt());
        // 10 rounds take ~10 RTTs of virtual time.
        assert!(sync.duration >= SimTime::from_micros(9 * t.max_rtt().as_micros()));
    }

    #[test]
    fn synchronous_message_count_matches_structure() {
        let p = base_workload();
        let sync = run_synchronous(&p, &topo(&p), LrgpConfig::default(), 5);
        // Per round: each flow sends to 2 c-nodes (12 RateUpdates); each
        // c-node hosts 4 flows and answers each source (12 Feedbacks).
        assert_eq!(sync.messages, 5 * 24);
    }

    #[test]
    fn synchronous_protocol_matches_engine_on_link_workloads() {
        // The distributed protocol must also carry link prices (Algorithm 3
        // runs at the owning endpoint). Verify trace equality against the
        // centralized engine on a workload where the link binds.
        let p = lrgp_model::workloads::link_bottleneck_workload(100.0);
        let cfg = LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() };
        let t = topo(&p);
        let sync = run_synchronous(&p, &t, cfg, 300);
        let mut engine = Engine::new(p.clone(), cfg);
        engine.run(300);
        for (k, (a, b)) in sync
            .utility
            .values()
            .iter()
            .zip(engine.trace().utility.values())
            .enumerate()
        {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "round {k}: distributed {a} vs centralized {b}"
            );
        }
        // And the link constraint is actually respected at convergence.
        let usage = sync.allocation.link_usage(&p, lrgp_model::LinkId::new(0));
        assert!(usage <= 101.0, "link overloaded: {usage}");
        assert!(usage > 90.0, "link underutilized: {usage}");
    }

    #[test]
    fn sync_protocol_matches_engine_on_tree_workload() {
        let spec = crate::tree::TreeWorkload {
            link_capacity: 200.0,
            node_capacity: 1e9,
            max_population: 20,
            rate_bounds: (1.0, 1000.0),
            ..crate::tree::TreeWorkload::default()
        };
        let inst = spec.build();
        let cfg = LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() };
        let t = spec.topology(&inst);
        let sync = run_synchronous(&inst.problem, &t, cfg, 150);
        let mut engine = Engine::new(inst.problem.clone(), cfg);
        engine.run(150);
        for (a, b) in sync.utility.values().iter().zip(engine.trace().utility.values()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn asynchronous_converges_near_synchronous_utility() {
        let p = base_workload();
        let t = topo(&p);
        let sync = run_synchronous(&p, &t, LrgpConfig::default(), 200);
        let sync_final = sync.utility.last().unwrap();
        let async_out = run_asynchronous(
            &p,
            &t,
            AsyncConfig { duration: SimTime::from_secs(20), ..AsyncConfig::default() },
        );
        let rel = (async_out.final_utility - sync_final).abs() / sync_final;
        assert!(
            rel < 0.05,
            "async {} vs sync {sync_final} (rel {rel:.3})",
            async_out.final_utility
        );
        // Asynchrony pairs node-decided populations with slightly newer
        // source rates, so transient overloads of a fraction of a percent
        // are expected (the paper notes LRGP is not "live" flow control,
        // §3.5). Assert they stay below 1 % of capacity.
        let tol = 0.01 * lrgp_model::workloads::GRYPHON_NODE_CAPACITY;
        assert!(
            async_out.allocation.is_feasible(&p, tol),
            "{}",
            async_out.allocation.check_feasibility(&p, 0.0)
        );
    }

    #[test]
    fn asynchronous_deterministic_per_seed() {
        let p = base_workload();
        let t = topo(&p);
        let cfg = AsyncConfig { duration: SimTime::from_secs(3), ..AsyncConfig::default() };
        let a = run_asynchronous(&p, &t, cfg);
        let b = run_asynchronous(&p, &t, cfg);
        assert_eq!(a.utility, b.utility);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn asynchronous_price_averaging_changes_dynamics_not_outcome() {
        let p = base_workload();
        let t = topo(&p);
        let base = AsyncConfig { duration: SimTime::from_secs(20), ..AsyncConfig::default() };
        let latest_only = run_asynchronous(&p, &t, AsyncConfig { price_window: 1, ..base });
        let averaged = run_asynchronous(&p, &t, AsyncConfig { price_window: 5, ..base });
        let rel = (latest_only.final_utility - averaged.final_utility).abs()
            / latest_only.final_utility;
        assert!(rel < 0.05, "window=1 {} vs window=5 {}", latest_only.final_utility, averaged.final_utility);
    }

    #[test]
    fn heterogeneous_latencies_still_converge() {
        let p = base_workload();
        let t = Topology::from_problem(
            &p,
            LatencyModel::RandomUniform {
                min: SimTime::from_millis(1),
                max: SimTime::from_millis(40),
                seed: 5,
            },
            SimTime::from_micros(200),
        );
        let out = run_asynchronous(
            &p,
            &t,
            AsyncConfig { duration: SimTime::from_secs(20), ..AsyncConfig::default() },
        );
        // Compare against the centralized optimizer's converged value.
        let mut engine = Engine::new(p.clone(), LrgpConfig::default());
        let reference = engine.run_until_converged(250).utility;
        let rel = (out.final_utility - reference).abs() / reference;
        assert!(rel < 0.05, "async {} vs reference {reference}", out.final_utility);
    }

    #[test]
    fn asynchronous_survives_message_loss() {
        let p = base_workload();
        let t = topo(&p);
        let reference = {
            let mut e = Engine::new(p.clone(), LrgpConfig::default());
            e.run_until_converged(300).utility
        };
        for loss in [0.1, 0.25] {
            let out = run_asynchronous(
                &p,
                &t,
                AsyncConfig {
                    duration: SimTime::from_secs(30),
                    loss,
                    price_window: 3,
                    ..AsyncConfig::default()
                },
            );
            assert!(out.dropped > 0, "loss {loss} dropped nothing");
            let expected = (out.messages as f64 * loss) as u64;
            assert!(
                out.dropped.abs_diff(expected) < expected / 2 + 10,
                "loss {loss}: dropped {} of {} (expected ~{expected})",
                out.dropped,
                out.messages
            );
            let rel = (out.final_utility - reference).abs() / reference;
            assert!(
                rel < 0.08,
                "loss {loss}: async {} vs reference {reference} (rel {rel:.3})",
                out.final_utility
            );
        }
    }

    #[test]
    fn reliable_async_drops_nothing() {
        let p = base_workload();
        let t = topo(&p);
        let out = run_asynchronous(
            &p,
            &t,
            AsyncConfig { duration: SimTime::from_secs(2), ..AsyncConfig::default() },
        );
        assert_eq!(out.dropped, 0);
    }

    #[test]
    #[should_panic(expected = "loss probability must be in [0, 1)")]
    fn async_rejects_full_loss() {
        let p = base_workload();
        let t = topo(&p);
        let _ = run_asynchronous(&p, &t, AsyncConfig { loss: 1.0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "price window must be at least 1")]
    fn async_rejects_zero_window() {
        let p = base_workload();
        let t = topo(&p);
        let _ = run_asynchronous(&p, &t, AsyncConfig { price_window: 0, ..Default::default() });
    }
}
