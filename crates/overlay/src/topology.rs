//! Overlay topology: who talks to whom, and how long messages take.
//!
//! The optimization model ([`lrgp_model::Problem`]) deliberately abstracts
//! topology into cost coefficients. The protocol simulation, however, needs
//! concrete *latencies*: a flow source exchanges rate/price messages with
//! every node its flow reaches, and "the time to complete an iteration
//! equals approximately the maximum round trip time between any two nodes in
//! the overlay" (§4.3). A [`Topology`] assigns a one-way latency to every
//! (source node, consumer node) pair a flow uses, plus per-node processing
//! delays.

use crate::sim::SimTime;
use lrgp_model::{FlowId, NodeId, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How pairwise latencies are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every node pair has the same one-way latency.
    Uniform {
        /// The shared one-way latency.
        latency: SimTime,
    },
    /// One-way latencies drawn uniformly from `[min, max]` per ordered pair,
    /// deterministically from `seed` (symmetric: both directions share the
    /// draw).
    RandomUniform {
        /// Smallest possible latency.
        min: SimTime,
        /// Largest possible latency.
        max: SimTime,
        /// RNG seed for reproducible draws.
        seed: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Uniform { latency: SimTime::from_millis(10) }
    }
}

/// Concrete communication topology over a problem's nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    latencies: BTreeMap<(NodeId, NodeId), SimTime>,
    processing_delay: SimTime,
}

impl Topology {
    /// Builds a topology covering every (flow source ↔ reached node) pair of
    /// `problem`, using `model` for latencies and a fixed per-hop
    /// `processing_delay`.
    pub fn from_problem(problem: &Problem, model: LatencyModel, processing_delay: SimTime) -> Self {
        let mut rng = match model {
            LatencyModel::RandomUniform { seed, .. } => Some(StdRng::seed_from_u64(seed)),
            LatencyModel::Uniform { .. } => None,
        };
        let mut latencies = BTreeMap::new();
        let mut draw = |a: NodeId, b: NodeId, latencies: &mut BTreeMap<(NodeId, NodeId), SimTime>| {
            if latencies.contains_key(&(a, b)) {
                return;
            }
            let l = match model {
                LatencyModel::Uniform { latency } => latency,
                LatencyModel::RandomUniform { min, max, .. } => {
                    // lrgp-lint: allow(library-unwrap, reason = "rng is constructed whenever the model is RandomUniform")
                    let rng = rng.as_mut().expect("random model has rng");
                    SimTime::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
                }
            };
            latencies.insert((a, b), l);
            latencies.insert((b, a), l);
        };
        for flow in problem.flow_ids() {
            let src = problem.flow(flow).source;
            for &(node, _) in problem.nodes_of_flow(flow) {
                if node != src {
                    draw(src, node, &mut latencies);
                }
            }
        }
        Self { latencies, processing_delay }
    }

    /// One-way latency between two nodes; zero for a node to itself,
    /// `None` for pairs that never communicate.
    pub fn latency(&self, from: NodeId, to: NodeId) -> Option<SimTime> {
        if from == to {
            return Some(SimTime::ZERO);
        }
        self.latencies.get(&(from, to)).copied()
    }

    /// Per-hop processing delay applied at the receiving node.
    pub fn processing_delay(&self) -> SimTime {
        self.processing_delay
    }

    /// One-way message delay `latency + processing`, for scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the pair never communicates in this topology.
    pub fn delay(&self, from: NodeId, to: NodeId) -> SimTime {
        self.latency(from, to)
            // lrgp-lint: allow(library-unwrap, reason = "documented panic contract: the pair must communicate")
            .unwrap_or_else(|| panic!("no path {from} -> {to} in topology"))
            + self.processing_delay
    }

    /// Maximum round-trip time over every communicating pair — the paper's
    /// estimate of one synchronous iteration's duration (§4.3).
    pub fn max_rtt(&self) -> SimTime {
        self.latencies
            .values()
            .map(|&l| SimTime::from_micros(2 * (l + self.processing_delay).as_micros()))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The communication path set: for `flow`, the source and the nodes it
    /// exchanges messages with.
    pub fn flow_peers(problem: &Problem, flow: FlowId) -> (NodeId, Vec<NodeId>) {
        let src = problem.flow(flow).source;
        let peers = problem
            .nodes_of_flow(flow)
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != src)
            .collect();
        (src, peers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;

    #[test]
    fn uniform_topology_covers_all_flow_pairs() {
        let p = base_workload();
        let t = Topology::from_problem(
            &p,
            LatencyModel::Uniform { latency: SimTime::from_millis(5) },
            SimTime::from_micros(100),
        );
        for flow in p.flow_ids() {
            let (src, peers) = Topology::flow_peers(&p, flow);
            assert_eq!(peers.len(), 2, "each base flow reaches 2 c-nodes");
            for peer in peers {
                assert_eq!(t.latency(src, peer), Some(SimTime::from_millis(5)));
                assert_eq!(t.latency(peer, src), Some(SimTime::from_millis(5)));
                assert_eq!(t.delay(src, peer), SimTime::from_micros(5_100));
            }
        }
        assert_eq!(t.max_rtt(), SimTime::from_micros(2 * 5_100));
        assert_eq!(t.processing_delay(), SimTime::from_micros(100));
    }

    #[test]
    fn self_latency_is_zero_and_unknown_pairs_none() {
        let p = base_workload();
        let t = Topology::from_problem(&p, LatencyModel::default(), SimTime::ZERO);
        let n0 = NodeId::new(0);
        assert_eq!(t.latency(n0, n0), Some(SimTime::ZERO));
        // Two consumer nodes never talk directly.
        assert_eq!(t.latency(NodeId::new(0), NodeId::new(1)), None);
    }

    #[test]
    fn random_latencies_deterministic_and_symmetric() {
        let p = base_workload();
        let model = LatencyModel::RandomUniform {
            min: SimTime::from_millis(1),
            max: SimTime::from_millis(50),
            seed: 11,
        };
        let a = Topology::from_problem(&p, model, SimTime::ZERO);
        let b = Topology::from_problem(&p, model, SimTime::ZERO);
        assert_eq!(a, b);
        for flow in p.flow_ids() {
            let (src, peers) = Topology::flow_peers(&p, flow);
            for peer in peers {
                let fwd = a.latency(src, peer).unwrap();
                assert_eq!(a.latency(peer, src).unwrap(), fwd);
                assert!(fwd >= SimTime::from_millis(1) && fwd <= SimTime::from_millis(50));
            }
        }
    }

    #[test]
    fn max_rtt_reflects_worst_pair() {
        let p = base_workload();
        let model = LatencyModel::RandomUniform {
            min: SimTime::from_millis(1),
            max: SimTime::from_millis(50),
            seed: 3,
        };
        let t = Topology::from_problem(&p, model, SimTime::from_micros(500));
        let worst = t
            .latencies
            .values()
            .max()
            .copied()
            .unwrap();
        assert_eq!(t.max_rtt(), SimTime::from_micros(2 * (worst.as_micros() + 500)));
    }

    #[test]
    #[should_panic(expected = "no path")]
    fn delay_panics_for_unconnected_pair() {
        let p = base_workload();
        let t = Topology::from_problem(&p, LatencyModel::default(), SimTime::ZERO);
        let _ = t.delay(NodeId::new(0), NodeId::new(1));
    }
}
