//! Event-driven overlay substrate for the LRGP reproduction.
//!
//! The paper targets "event-driven distributed infrastructures": overlays of
//! broker nodes disseminating message flows from producers to consumers.
//! This crate builds that substrate and runs LRGP *as the distributed
//! protocol the paper describes*, rather than as a centralized loop:
//!
//! * [`sim`] — a deterministic discrete-event simulator (virtual clock,
//!   FIFO-stable event queue).
//! * [`topology`] — concrete communication topology with per-pair
//!   latencies; computes the maximum RTT that bounds one synchronous
//!   iteration (§4.3).
//! * [`protocol`] — the distributed protocol: flow-source actors
//!   (Algorithm 1), node actors (Algorithm 2), rate/price messages.
//!   Synchronous mode provably matches the centralized engine trace;
//!   asynchronous mode implements §3.5's price-averaging relaxation.
//! * [`plane`] — the data plane: enact an allocation and simulate the
//!   actual message traffic, verifying that feasible allocations keep node
//!   utilization at or below capacity.
//! * [`tree`] — multi-hop dissemination-tree workloads with per-edge link
//!   constraints, exercising the joint link+node pricing the paper's
//!   workloads deliberately avoid.
//!
//! # Examples
//!
//! ```
//! use lrgp::LrgpConfig;
//! use lrgp_model::workloads;
//! use lrgp_overlay::sim::SimTime;
//! use lrgp_overlay::topology::{LatencyModel, Topology};
//! use lrgp_overlay::protocol::run_synchronous;
//!
//! let problem = workloads::base_workload();
//! let topology = Topology::from_problem(
//!     &problem,
//!     LatencyModel::Uniform { latency: SimTime::from_millis(10) },
//!     SimTime::from_micros(200),
//! );
//! let outcome = run_synchronous(&problem, &topology, LrgpConfig::default(), 50);
//! assert_eq!(outcome.utility.len(), 50);
//! assert!(outcome.utility.last().unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plane;
pub mod protocol;
pub mod sim;
pub mod topology;
pub mod tree;

pub use plane::{simulate_message_plane, ArrivalProcess, DeliveryReport, PlaneConfig};
pub use protocol::{run_asynchronous, run_synchronous, AsyncConfig, AsyncOutcome, SyncOutcome};
pub use sim::{EventQueue, SimTime};
pub use topology::{LatencyModel, Topology};
pub use tree::{TreeInstance, TreeWorkload};
