//! The message (data) plane: actually disseminating events.
//!
//! The optimizer decides rates and admissions; this module *enacts* an
//! allocation and simulates the resulting message traffic: producers inject
//! messages at the allocated rates, messages travel the overlay to every
//! node their flow reaches, and each delivery costs the node
//! `F_{b,i} + Σ_j G_{b,j} n_j` resource units (the per-message form of
//! constraint (5)). The report ties the control plane back to reality: a
//! feasible allocation must keep every node's utilization at or below 1.

use crate::sim::{EventQueue, SimTime};
use crate::topology::Topology;
use lrgp_model::{Allocation, FlowId, NodeId, Problem};
use lrgp_num::stats::Summary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How producers space their messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Deterministic spacing `1/r` (a paced producer).
    #[default]
    Deterministic,
    /// Poisson arrivals with mean rate `r` (bursty real-world producers).
    Poisson,
}

/// Message-plane simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaneConfig {
    /// Simulated duration.
    pub duration: SimTime,
    /// Arrival process for producers.
    pub arrivals: ArrivalProcess,
    /// Safety cap on simulated messages (a run aborts cleanly rather than
    /// grinding through an unexpected flood).
    pub max_messages: u64,
    /// RNG seed (Poisson arrivals).
    pub seed: u64,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        Self {
            duration: SimTime::from_secs(1),
            arrivals: ArrivalProcess::Deterministic,
            max_messages: 5_000_000,
            seed: 0,
        }
    }
}

/// What happened on the data plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Messages injected per flow.
    pub injected: Vec<u64>,
    /// Message arrivals per node.
    pub node_arrivals: Vec<u64>,
    /// Consumer deliveries per class (arrivals at its node × population).
    pub class_deliveries: Vec<u64>,
    /// Resource consumed per node over the run.
    pub node_work: Vec<f64>,
    /// `node_work / (capacity × duration)` per node — must be ≤ 1 (+ε) for
    /// a feasible allocation.
    pub node_utilization: Vec<f64>,
    /// One-way delivery latency statistics across all messages.
    pub latency: Summary,
    /// `true` if the message cap stopped the run early.
    pub truncated: bool,
}

impl DeliveryReport {
    /// Highest node utilization observed.
    pub fn peak_utilization(&self) -> f64 {
        self.node_utilization.iter().copied().fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone)]
enum PlaneEvent {
    Inject { flow: FlowId },
    Arrive { flow: FlowId, node: NodeId, sent_at: SimTime },
}

/// Simulates the data plane under `allocation`.
///
/// Messages of flow `i` are injected at its allocated rate at the source
/// and delivered to every node in `B_i` after the topology delay. Each
/// arrival at node `b` consumes `F_{b,i} + Σ_{j ∈ attach_i(b)} G_{b,j} n_j`
/// resource units and counts one delivery per admitted consumer.
pub fn simulate_message_plane(
    problem: &Problem,
    topology: &Topology,
    allocation: &Allocation,
    config: PlaneConfig,
) -> DeliveryReport {
    let mut queue: EventQueue<PlaneEvent> = EventQueue::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut injected = vec![0u64; problem.num_flows()];
    let mut node_arrivals = vec![0u64; problem.num_nodes()];
    let mut class_deliveries = vec![0u64; problem.num_classes()];
    let mut node_work = vec![0.0; problem.num_nodes()];
    let mut latency = Summary::new();
    let mut messages = 0u64;
    let mut truncated = false;

    let interval = |rate: f64, rng: &mut StdRng| -> SimTime {
        let mean_micros = 1e6 / rate;
        let micros = match config.arrivals {
            ArrivalProcess::Deterministic => mean_micros,
            ArrivalProcess::Poisson => {
                // Inverse-CDF exponential sample.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean_micros * u.ln()
            }
        };
        // lrgp-lint: allow(lossy-float-cast, reason = "intentional quantization of a seeded sample to whole simulated microseconds; truncation is deterministic and part of the clock model")
        SimTime::from_micros(micros.max(1.0) as u64)
    };

    for flow in problem.flow_ids() {
        let rate = allocation.rate(flow);
        if rate > 0.0 {
            let first = interval(rate, &mut rng);
            queue.schedule(first, PlaneEvent::Inject { flow });
        }
    }

    while let Some((t, event)) = queue.pop() {
        if t > config.duration {
            break;
        }
        match event {
            PlaneEvent::Inject { flow } => {
                if messages >= config.max_messages {
                    truncated = true;
                    break;
                }
                messages += 1;
                injected[flow.index()] += 1;
                let src = problem.flow(flow).source;
                for &(node, _) in problem.nodes_of_flow(flow) {
                    let delay = if node == src {
                        topology.processing_delay()
                    } else {
                        topology.delay(src, node)
                    };
                    queue.schedule_after(delay, PlaneEvent::Arrive { flow, node, sent_at: t });
                }
                let rate = allocation.rate(flow);
                queue.schedule_after(interval(rate, &mut rng), PlaneEvent::Inject { flow });
            }
            PlaneEvent::Arrive { flow, node, sent_at } => {
                node_arrivals[node.index()] += 1;
                latency.add((t - sent_at).as_secs_f64());
                let mut cost = problem.flow_node_cost(node, flow);
                for class in problem.classes_of_flow_at_node(flow, node) {
                    let n = allocation.population(class);
                    cost += problem.class(class).consumer_cost * n;
                    class_deliveries[class.index()] += n as u64;
                }
                node_work[node.index()] += cost;
            }
        }
    }

    let duration_s = config.duration.as_secs_f64();
    let node_utilization = problem
        .node_ids()
        .map(|n| node_work[n.index()] / (problem.node(n).capacity * duration_s))
        .collect();

    DeliveryReport {
        injected,
        node_arrivals,
        class_deliveries,
        node_work,
        node_utilization,
        latency,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LatencyModel;
    use lrgp::{Engine, LrgpConfig};
    use lrgp_model::workloads::base_workload;

    fn topo(p: &Problem) -> Topology {
        Topology::from_problem(
            p,
            LatencyModel::Uniform { latency: SimTime::from_millis(5) },
            SimTime::from_micros(100),
        )
    }

    fn optimized_allocation(p: &Problem) -> Allocation {
        let mut e = Engine::new(p.clone(), LrgpConfig::default());
        e.run_until_converged(250);
        e.allocation()
    }

    #[test]
    fn deterministic_arrivals_track_rates() {
        let p = base_workload();
        let a = optimized_allocation(&p);
        let report = simulate_message_plane(&p, &topo(&p), &a, PlaneConfig::default());
        assert!(!report.truncated);
        for flow in p.flow_ids() {
            let expected = a.rate(flow); // 1 second of messages
            let got = report.injected[flow.index()] as f64;
            assert!(
                (got - expected).abs() <= expected * 0.02 + 2.0,
                "{flow}: injected {got}, rate {expected}"
            );
        }
    }

    #[test]
    fn feasible_allocation_keeps_nodes_under_capacity() {
        let p = base_workload();
        let a = optimized_allocation(&p);
        assert!(a.is_feasible(&p, 1e-6));
        let report = simulate_message_plane(&p, &topo(&p), &a, PlaneConfig::default());
        // Quantization of message counts can wiggle a few percent.
        assert!(
            report.peak_utilization() <= 1.05,
            "peak utilization {}",
            report.peak_utilization()
        );
        // And the optimizer should be *using* the nodes it saturates.
        assert!(report.peak_utilization() > 0.5);
    }

    #[test]
    fn infeasible_allocation_overloads_a_node() {
        let p = base_workload();
        let a = Allocation::upper_bounds(&p); // everyone at max: infeasible
        let report = simulate_message_plane(&p, &topo(&p), &a, PlaneConfig::default());
        assert!(report.peak_utilization() > 1.5);
    }

    #[test]
    fn deliveries_scale_with_population() {
        let p = base_workload();
        let a = optimized_allocation(&p);
        let report = simulate_message_plane(&p, &topo(&p), &a, PlaneConfig::default());
        for class in p.class_ids() {
            let n = a.population(class);
            let node_arr = report.node_arrivals[p.class(class).node.index()];
            if n == 0.0 {
                assert_eq!(report.class_deliveries[class.index()], 0);
            } else {
                // Every arrival of the class's flow delivers to n consumers;
                // the node sees arrivals from several flows, so deliveries
                // are at most node arrivals × n.
                assert!(report.class_deliveries[class.index()] as f64 <= node_arr as f64 * n);
                assert!(report.class_deliveries[class.index()] > 0);
            }
        }
    }

    #[test]
    fn poisson_arrivals_match_rates_in_expectation() {
        let p = base_workload();
        let a = optimized_allocation(&p);
        let cfg = PlaneConfig {
            arrivals: ArrivalProcess::Poisson,
            duration: SimTime::from_secs(5),
            seed: 17,
            ..Default::default()
        };
        let report = simulate_message_plane(&p, &topo(&p), &a, cfg);
        for flow in p.flow_ids() {
            let expected = a.rate(flow) * 5.0;
            let got = report.injected[flow.index()] as f64;
            assert!(
                (got - expected).abs() <= 5.0 * expected.sqrt() + 5.0,
                "{flow}: injected {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn latency_stats_match_topology() {
        let p = base_workload();
        let a = optimized_allocation(&p);
        let report = simulate_message_plane(&p, &topo(&p), &a, PlaneConfig::default());
        // All one-way delays are 5.1 ms.
        assert!((report.latency.mean() - 0.0051).abs() < 1e-9);
        assert_eq!(report.latency.min(), report.latency.max());
    }

    #[test]
    fn message_cap_truncates_cleanly() {
        let p = base_workload();
        let a = optimized_allocation(&p);
        // Every flow's rate is at least r_min = 10, so 6 flows inject ≥ 60
        // messages/second; a cap of 20 always triggers within the second.
        let cfg = PlaneConfig { max_messages: 20, ..Default::default() };
        let report = simulate_message_plane(&p, &topo(&p), &a, cfg);
        assert!(report.truncated);
        let total: u64 = report.injected.iter().sum();
        assert!(total <= 21);
    }

    #[test]
    fn zero_rate_flow_sends_nothing() {
        let p = base_workload();
        let mut e = Engine::new(p.clone(), LrgpConfig::default());
        e.run(100);
        e.apply_delta(&lrgp_model::ProblemDelta::new().remove_flow(FlowId::new(5))).unwrap();
        e.run(50);
        let a = e.allocation();
        let report = simulate_message_plane(e.problem(), &topo(&p), &a, PlaneConfig::default());
        assert_eq!(report.injected[5], 0);
    }
}
