//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64. Streams are
//! fully deterministic per seed (the property every test in this workspace
//! relies on) but intentionally do **not** match upstream `StdRng`'s
//! ChaCha12 streams — nothing in the workspace depends on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array for `StdRng`).
    type Seed;

    /// Builds a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampled by [`Rng::gen`] from the "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// Panics on empty ranges, matching upstream.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing extension methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-2.5f64..=4.0);
            assert!((-2.5..=4.0).contains(&x));
            let y = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
