//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` shim without depending on `syn`/`quote` (unavailable in
//! this offline build environment). The input item is parsed with a small
//! hand-rolled token walker that extracts exactly what code generation
//! needs: field *names* for named structs, field *counts* for tuple structs,
//! and the variant list for enums. Field types are never inspected — the
//! generated code lets Rust's type inference pick the right
//! `serde::Deserialize` impl per field.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields, honoring `#[serde(default)]` on a field
//!   (an absent key deserializes to `Default::default()`),
//! * tuple structs (single-field ones delegate to the inner value, matching
//!   both real serde's newtype behavior and `#[serde(transparent)]`),
//! * unit structs,
//! * enums with unit, newtype, tuple, and struct variants, encoded with
//!   real serde's external tagging.
//!
//! Generic types and other serde attributes are rejected with a compile
//! error naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item parser extracts.
enum Shape {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// A named field and whether it carried `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Entry point for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Entry point for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen(&shape).parse().expect("generated impl parses"),
        Err(msg) => format!("::core::compile_error!({msg:?});").parse().expect("error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive: generic type `{name}` is not supported"));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("serde shim derive supports struct/enum, found `{other}`")),
    }
}

/// Skips `#[...]` outer attributes (doc comments arrive in this form too).
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    consume_attributes(tokens, pos);
}

/// Skips `#[...]` outer attributes, reporting whether any of them was
/// `#[serde(default)]` (possibly alongside other idents in the list).
fn consume_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1; // '#'
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Bracket {
                default |= is_serde_default(g.stream());
                *pos += 1;
            }
        }
    }
    default
}

/// Whether an attribute body (the tokens inside `#[...]`) is
/// `serde(... default ...)`.
fn is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skips a type (or any token run) up to a top-level `,`, tracking `<...>`
/// nesting so commas inside generic arguments don't terminate early.
/// Leaves `pos` on the comma (or at end).
fn skip_to_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let default = consume_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        skip_to_top_level_comma(&tokens, &mut pos);
        pos += 1; // consume the comma (or step past end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Counts top-level comma-separated, non-empty chunks in a tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        let start = pos;
        skip_to_top_level_comma(&tokens, &mut pos);
        if pos > start {
            count += 1;
        }
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Step over the separating comma, if any.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec::Vec::from([{}]))\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec::Vec::from([{}]))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from({vn:?}), ::serde::Serialize::to_value(__f0))])),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec::Vec::from([\
                                     (::std::string::String::from({vn:?}), ::serde::Value::Array(\
                                         ::std::vec::Vec::from([{}])))])),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds =
                                fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec::Vec::from([\
                                     (::std::string::String::from({vn:?}), ::serde::Value::Object(\
                                         ::std::vec::Vec::from([{}])))])),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// The initializer expression for one named field: `#[serde(default)]`
/// fields tolerate an absent key by falling back to `Default::default()`.
fn field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: ::serde::get_field_or_default(__obj, {name:?})?")
    } else {
        format!("{name}: ::serde::get_field(__obj, {name:?})?")
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(field_init).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                             ::std::format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> =
                (0..*arity).map(|i| format!("::serde::get_elem(__arr, {i})?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                             ::std::format!(\"expected array for {name}, found {{}}\", __v.kind())))?;\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(_inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::get_elem(__arr, {i})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let __arr = _inner.as_array().ok_or_else(|| ::serde::DeError::custom(\
                                         \"expected array for variant {vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields.iter().map(field_init).collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let __obj = _inner.as_object().ok_or_else(|| ::serde::DeError::custom(\
                                         \"expected object for variant {vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let _tag = &__entries[0].0;\n\
                                 let _inner = &__entries[0].1;\n\
                                 match _tag.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"expected enum {name}, found {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
