//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark-definition API this workspace uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple wall-clock timing loop instead of criterion's
//! statistical machinery. Each benchmark is warmed up briefly, then timed
//! over an adaptively chosen iteration count; the mean time per iteration
//! (and throughput, when declared) is printed to stdout.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), every benchmark runs exactly one iteration so the suite
//! doubles as a smoke test.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How long the measurement loop aims to run per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// How long the warm-up loop runs per benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(50);

/// Declared throughput for a benchmark group, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Mean wall-clock time per iteration measured by the last `iter` call.
    mean: Duration,
    /// True when running in `--test` smoke mode (single iteration, no timing).
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.mean = Duration::ZERO;
            return;
        }
        // Warm-up: also discovers roughly how long one iteration takes.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < TARGET_WARMUP {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let iters = if per_iter.is_zero() {
            10_000
        } else {
            (TARGET_MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{} ns", nanos)
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.test_mode {
        println!("{name}: ok (smoke test, 1 iteration)");
        return;
    }
    let mean = bencher.mean;
    let mut line = format!("{name}: {} /iter", format_duration(mean));
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.3e} elem/s)", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  ({:.3e} B/s)", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// The benchmark manager; one per `criterion_group!`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/libtest pass through that take a value.
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| name.contains(f))
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.selected(name) {
            let mut bencher = Bencher { mean: Duration::ZERO, test_mode: self.test_mode };
            f(&mut bencher);
            report(name, &bencher, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.selected(&full) {
            return;
        }
        let mut bencher = Bencher { mean: Duration::ZERO, test_mode: self.criterion.test_mode };
        f(&mut bencher);
        report(&full, &bencher, self.throughput);
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
