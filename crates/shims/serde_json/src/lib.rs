//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON over the vendored `serde` shim's [`Value`] tree.
//! Covers the workspace's usage: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`Error`] type. Floats print through Rust's
//! `Display`, which emits the shortest decimal that round-trips — the same
//! guarantee real serde_json's `float_roundtrip` feature provides.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or on shape mismatches against `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {f}")));
            }
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // printer; decode BMP scalars only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u scalar"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("flow \"zero\"\n".to_string())),
            ("count".to_string(), Value::U64(3)),
            ("neg".to_string(), Value::I64(-7)),
            ("rate".to_string(), Value::F64(0.1)),
            (
                "nested".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::F64(9e5)]),
            ),
            ("empty_arr".to_string(), Value::Array(vec![])),
            ("empty_obj".to_string(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            // 9e5 prints as "900000" and re-parses as U64; compare after
            // normalizing through f64 where needed.
            assert_eq!(back.get("name"), v.get("name"));
            assert_eq!(back.get("count"), v.get("count"));
            assert_eq!(back.get("neg"), v.get("neg"));
            assert_eq!(back.get("rate"), v.get("rate"));
        }
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -2.5e-17, 1e300] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text}");
        }
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo ✓ \u{1F600} \"q\" \\ /".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let esc: String = from_str(r#""A\n\t\/""#).unwrap();
        assert_eq!(esc, "A\n\t/");
    }
}
