//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

/// A strategy covering `T`'s full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite floats over a wide dynamic range (no NaN/inf, matching the
        // "sane" default expectations of the workspace's tests).
        let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-300i32..300) as f64;
        mantissa * 10f64.powf(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}
