//! Offline stand-in for `proptest`.
//!
//! Deterministic randomized property testing over the vendored `rand` shim.
//! Covers the API surface this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], [`strategy::Strategy::prop_map`], [`arbitrary::any`],
//! [`collection::vec`], numeric range strategies, [`strategy::Just`], and
//! tuple strategies.
//!
//! Differences from real proptest: cases are drawn from a fixed seed
//! sequence (test name hash + case index), there is no shrinking, and
//! `.proptest-regressions` files are ignored. Failures report the case
//! number and per-test deterministic seed, which reproduces the input.

pub mod arbitrary;
pub mod collection;
pub mod runner;
pub mod strategy;
pub mod test_runner;

/// `bool` strategies, mirroring `proptest::bool`.
pub mod bool {
    /// Strategy producing both booleans.
    pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
}

/// `f64` strategies are plain ranges; nothing extra needed.
pub use crate::runner::TestCaseError;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property-test functions; see the crate docs for the supported
/// grammar.
///
/// Unlike real proptest, `#[test]` is **not** added implicitly — this
/// workspace annotates every function inside `proptest!` with an explicit
/// `#[test]`, and adding a second one would register each test twice.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __result
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (with the
/// reproducing seed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Chooses uniformly among the given strategies (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
