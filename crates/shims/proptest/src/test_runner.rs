//! Runner configuration (`proptest::test_runner::ProptestConfig`).

/// Controls how many cases each property test runs, mirroring the fields of
/// real proptest's config that this workspace touches. Construct with struct
/// update syntax: `ProptestConfig { cases: 64, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to execute per test.
    pub cases: u32,
    /// Maximum rejected (filtered-out) cases tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    /// Convenience constructor matching real proptest.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}
