//! Strategy trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking machinery: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy per value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries until `f` accepts the value (bounded; panics after 1000
    /// rejections like real proptest's `prop_filter` gives up).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Strategy producing both booleans (see `crate::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
