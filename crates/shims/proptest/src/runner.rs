//! Case execution loop and failure reporting.

use crate::test_runner::ProptestConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed property-test case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Alias kept for parity with real proptest's `TestCaseError::Fail`.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a over the test name: gives each test its own deterministic seed
/// stream without any global state.
fn name_hash(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `config.cases` deterministic cases of `case`, panicking (so the test
/// harness records a failure) with the case index and seed on the first `Err`.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = name_hash(name);
    for index in 0..config.cases {
        let seed = base ^ u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(err) = case(&mut rng) {
            panic!(
                "proptest case failed: {} (test `{}`, case {}/{}, seed {:#x})",
                err, name, index, config.cases, seed
            );
        }
    }
}
