//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework under the `serde` name. Unlike real
//! serde's visitor architecture, this shim converts values to and from a
//! single self-describing [`Value`] tree; `serde_json` (also vendored)
//! renders that tree as JSON. The derive macros live in the vendored
//! `serde_derive` proc-macro crate and generate impls of the two traits
//! below, using real serde's external enum tagging so existing JSON fixtures
//! remain readable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};

/// A self-describing tree of serialized data (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the shim's data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim's data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Derive support helpers (used by generated code; not part of the public
// serde API surface).
// ---------------------------------------------------------------------------

/// Fetches and deserializes a struct field; absent keys deserialize from
/// `Null` so `Option` fields tolerate omission.
pub fn get_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError(format!("field `{key}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{key}`"))),
    }
}

/// Fetches and deserializes a struct field marked `#[serde(default)]`:
/// an absent key falls back to `T::default()` instead of erroring, so new
/// fields can be added to persisted formats backward-compatibly.
pub fn get_field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{key}`: {e}"))),
        None => Ok(T::default()),
    }
}

/// Fetches and deserializes a positional element of a tuple struct/variant.
pub fn get_elem<T: Deserialize>(arr: &[Value], idx: usize) -> Result<T, DeError> {
    let v = arr
        .get(idx)
        .ok_or_else(|| DeError(format!("missing tuple element {idx}")))?;
    T::from_value(v).map_err(|e| DeError(format!("element {idx}: {e}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

fn int_from_value(v: &Value, what: &str) -> Result<i128, DeError> {
    match v {
        Value::U64(n) => Ok(*n as i128),
        Value::I64(n) => Ok(*n as i128),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Ok(*f as i128),
        other => Err(DeError(format!("expected {what}, found {}", other.kind()))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = int_from_value(v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = int_from_value(v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single-char string, found {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| {
                    DeError(format!("expected tuple array, found {}", v.kind()))
                })?;
                Ok(($(get_elem::<$name>(arr, $idx)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_decoding() {
        // A float that printed as an integer must still decode as f64.
        assert_eq!(f64::from_value(&Value::U64(900_000)).unwrap(), 9e5);
        assert_eq!(u32::from_value(&Value::F64(12.0)).unwrap(), 12);
        assert!(u32::from_value(&Value::F64(12.5)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let obj = vec![("present".to_string(), Value::U64(3))];
        assert_eq!(get_field::<Option<u32>>(&obj, "present").unwrap(), Some(3));
        assert_eq!(get_field::<Option<u32>>(&obj, "absent").unwrap(), None);
        assert!(get_field::<u32>(&obj, "absent").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let arr = [7u32, 8, 9];
        assert_eq!(<[u32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[u32; 2]>::from_value(&arr.to_value()).is_err());
    }
}
