//! Criterion micro-benchmarks for the overlay substrate: event-queue
//! throughput, distributed-protocol rounds, and the message plane.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lrgp::{Engine, LrgpConfig};
use lrgp_model::workloads::base_workload;
use lrgp_overlay::{
    run_synchronous, simulate_message_plane, EventQueue, LatencyModel, PlaneConfig, SimTime,
    Topology,
};

fn bench_event_queue(c: &mut Criterion) {
    const EVENTS: u64 = 10_000;
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..EVENTS {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    group.finish();
}

fn bench_sync_protocol(c: &mut Criterion) {
    let problem = base_workload();
    let topology = Topology::from_problem(
        &problem,
        LatencyModel::Uniform { latency: SimTime::from_millis(10) },
        SimTime::from_micros(200),
    );
    c.bench_function("sync_protocol_50_rounds", |b| {
        b.iter(|| {
            black_box(run_synchronous(&problem, &topology, LrgpConfig::default(), 50))
        })
    });
}

fn bench_message_plane(c: &mut Criterion) {
    let problem = base_workload();
    let topology = Topology::from_problem(
        &problem,
        LatencyModel::Uniform { latency: SimTime::from_millis(5) },
        SimTime::from_micros(100),
    );
    let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
    engine.run_until_converged(250);
    let allocation = engine.allocation();
    c.bench_function("message_plane_1s", |b| {
        b.iter(|| {
            black_box(simulate_message_plane(
                &problem,
                &topology,
                &allocation,
                PlaneConfig::default(),
            ))
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_sync_protocol, bench_message_plane);
criterion_main!(benches);
