//! Criterion micro-benchmarks for the centralized baselines: simulated
//! annealing step throughput and the incremental state evaluation kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lrgp_anneal::{anneal, AnnealConfig, Move, SearchState};
use lrgp_model::workloads::base_workload;
use lrgp_model::{ClassId, FlowId};

fn bench_sa_steps(c: &mut Criterion) {
    let problem = base_workload();
    let mut group = c.benchmark_group("simulated_annealing");
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));
    group.bench_function("steps_100k_base", |b| {
        b.iter(|| black_box(anneal(&problem, &AnnealConfig::paper(5.0, STEPS, 42))))
    });
    group.finish();
}

fn bench_incremental_eval(c: &mut Criterion) {
    let problem = base_workload();
    let state = SearchState::lower_bounds(&problem);
    let mut group = c.benchmark_group("search_state");
    group.bench_function("evaluate_rate_move", |b| {
        b.iter(|| {
            black_box(state.evaluate(Move::SetRate { flow: FlowId::new(0), rate: black_box(55.0) }))
        })
    });
    group.bench_function("evaluate_population_move", |b| {
        b.iter(|| {
            black_box(state.evaluate(Move::SetPopulation {
                class: ClassId::new(18),
                population: black_box(5.0),
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sa_steps, bench_incremental_eval);
criterion_main!(benches);
