//! Criterion micro-benchmarks for the pub/sub matching engines.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lrgp_pubsub::filter::FilterGen;
use lrgp_pubsub::matcher::{IndexMatcher, Matcher, NaiveMatcher};
use lrgp_pubsub::message::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_matchers(c: &mut Criterion) {
    let schema = Arc::new(Schema::trade_data());
    let gen = FilterGen::default();
    let mut group = c.benchmark_group("matching");
    for &subs in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(7);
        let filters: Vec<_> = (0..subs).map(|_| gen.generate(&schema, &mut rng)).collect();
        let messages: Vec<_> = (0..64).map(|_| schema.generate(&mut rng)).collect();
        let naive = {
            let mut m = NaiveMatcher::new();
            for f in filters.clone() {
                m.subscribe(f);
            }
            m
        };
        let index = IndexMatcher::from_filters(filters);
        group.throughput(Throughput::Elements(messages.len() as u64));
        group.bench_with_input(BenchmarkId::new("naive", subs), &messages, |b, msgs| {
            b.iter(|| {
                for m in msgs {
                    black_box(naive.match_message(m));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("index", subs), &messages, |b, msgs| {
            b.iter(|| {
                for m in msgs {
                    black_box(index.match_message(m));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
