//! Criterion micro-benchmarks for the LRGP optimizer itself:
//! per-iteration cost on the paper's workloads, convergence runs, and the
//! two inner kernels (rate solving and greedy admission).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lrgp::kernel::admission::{allocate_consumers, AdmissionPolicy, PopulationMode};
use lrgp::kernel::rate::{solve_rate, AggregateUtility};
use lrgp::{Engine, IncrementalMode, LrgpConfig, Parallelism};
use lrgp_model::workloads::{RandomWorkload, Table2Workload};
use lrgp_model::{NodeId, Problem, RateBounds, Utility};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrgp_iteration");
    for workload in Table2Workload::ALL {
        let problem = workload.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.label()),
            &problem,
            |b, p| {
                let mut engine = Engine::new(p.clone(), LrgpConfig::default());
                b.iter(|| black_box(engine.step()));
            },
        );
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let problem = Table2Workload::Base.build();
    c.bench_function("lrgp_converge_base", |b| {
        b.iter(|| {
            let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
            black_box(engine.run_until_converged(250))
        })
    });
}

fn bench_rate_solver(c: &mut Criterion) {
    let bounds = RateBounds::new(10.0, 1000.0).unwrap();
    let log_agg = AggregateUtility::from_terms(
        (0..10).map(|k| (100.0 + k as f64, Utility::log(1.0 + k as f64))),
    );
    let mixed_agg = AggregateUtility::from_terms(vec![
        (100.0, Utility::log(20.0)),
        (50.0, Utility::power(10.0, 0.5)),
        (25.0, Utility::saturating(30.0, 100.0)),
    ]);
    let mut group = c.benchmark_group("rate_solver");
    group.bench_function("closed_form_log", |b| {
        b.iter(|| black_box(solve_rate(&log_agg, black_box(1.7), bounds, 10.0)))
    });
    group.bench_function("bisection_mixed", |b| {
        b.iter(|| black_box(solve_rate(&mixed_agg, black_box(1.7), bounds, 10.0)))
    });
    group.finish();
}

fn bench_admission(c: &mut Criterion) {
    let problem = Table2Workload::Flows6Cnodes24.build();
    let rates: Vec<f64> = problem.flow_ids().map(|_| 100.0).collect();
    let node = NodeId::new(0);
    c.bench_function("greedy_admission_node", |b| {
        b.iter(|| {
            black_box(allocate_consumers(
                &problem,
                node,
                &rates,
                PopulationMode::Integral,
                AdmissionPolicy::StopAtFirstBlock,
            ))
        })
    });
}

/// A multi-hundred-flow synthetic workload whose mixed utility shapes force
/// the bisection rate solver, making per-iteration compute heavy enough for
/// the sharded engine's speedup to dominate thread-spawn overhead.
fn large_workload() -> Problem {
    let mut rng = StdRng::seed_from_u64(42);
    RandomWorkload {
        flows: 400,
        consumer_nodes: 24,
        classes_per_flow: 4,
        mixed_shapes: true,
        ..RandomWorkload::default()
    }
    .generate(&mut rng)
}

fn bench_parallel(c: &mut Criterion) {
    let problem = large_workload();
    let mut group = c.benchmark_group("lrgp_parallel_step");
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &problem, |b, p| {
        let mut engine = Engine::new(p.clone(), LrgpConfig::default());
        b.iter(|| black_box(engine.step()));
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &problem,
            |b, p| {
                let config = LrgpConfig {
                    parallelism: Parallelism::Threads(threads),
                    ..LrgpConfig::default()
                };
                let mut engine = Engine::new(p.clone(), config);
                b.iter(|| black_box(engine.step()));
            },
        );
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let problem = large_workload();
    let mut group = c.benchmark_group("lrgp_incremental_step");
    // Near-converged regime: warm up past the initial oscillation so the
    // dirty sets reflect the steady state the incremental path targets.
    let variants: [(&str, IncrementalMode, Parallelism); 4] = [
        ("baseline", IncrementalMode::Off, Parallelism::Sequential),
        ("incremental", IncrementalMode::On, Parallelism::Sequential),
        ("incremental_threads_2", IncrementalMode::On, Parallelism::Threads(2)),
        ("incremental_threads_4", IncrementalMode::On, Parallelism::Threads(4)),
    ];
    for (label, incremental, parallelism) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &problem, |b, p| {
            let config = LrgpConfig { incremental, parallelism, ..LrgpConfig::default() };
            let mut engine = Engine::new(p.clone(), config);
            engine.run(300);
            b.iter(|| black_box(engine.step()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_iteration,
    bench_convergence,
    bench_rate_solver,
    bench_admission,
    bench_parallel,
    bench_incremental
);
criterion_main!(benches);
