//! Parallel-engine scaling — wall-clock speedup of the sharded LRGP engine
//! over the sequential reference on a multi-hundred-flow synthetic workload.
//!
//! For each worker count, the binary runs the same iteration budget on an
//! identical `lrgp_model::workloads::RandomWorkload` problem, reports the
//! wall-clock time, per-iteration cost, and speedup over the sequential
//! engine, and asserts the final utility is **bit-identical** — the parallel
//! engine is a pure scheduler change, never a numeric one.
//!
//! Expected shape **on a multi-core host**: near-linear gains up to the
//! phase with the least shardable work (admission over consumer nodes),
//! then tapering; `threads 4` should be comfortably below sequential
//! wall-clock. On a single-core host the same run measures pure
//! scheduling overhead (speedup < 1 by construction) — the binary prints
//! the core count it saw so the numbers can be read accordingly.

use lrgp::{Engine, LrgpConfig, Parallelism, TraceConfig};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::RandomWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    // Mixed utility shapes deny the rate solver its closed forms, so each
    // flow pays the full bisection cost — the regime where sharding pays.
    // The node capacity is raised so admission keeps most classes active;
    // at the default capacity nearly every aggregate collapses to one class
    // and the closed forms come back.
    let workload = RandomWorkload {
        flows: 400,
        consumer_nodes: 24,
        classes_per_flow: 8,
        mixed_shapes: true,
        node_capacity: 1e9,
        ..RandomWorkload::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let problem = workload.generate(&mut rng);
    let iterations = args.iters.max(100);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "# Parallel scaling — {} flows, {} classes, {} nodes, {} iterations, {} core(s)\n",
        problem.num_flows(),
        problem.num_classes(),
        problem.num_nodes(),
        iterations,
        cores
    );
    if cores < 2 {
        println!(
            "> single-core host: worker threads cannot overlap, so the sharded rows\n\
             > below measure scheduling overhead only; run on ≥ 2 cores for speedup.\n"
        );
    }
    let config = LrgpConfig { trace: TraceConfig::default(), ..LrgpConfig::default() };

    let start = Instant::now();
    let mut sequential = Engine::new(problem.clone(), config);
    sequential.run(iterations);
    let baseline = start.elapsed();
    let reference_utility = sequential.trace().utility.last().unwrap_or(0.0);

    let mut table = Table::new(vec![
        "engine",
        "workers",
        "wall clock (ms)",
        "per iteration (µs)",
        "speedup",
        "utility bit-identical",
    ]);
    table.row(vec![
        "sequential".into(),
        "1".into(),
        format!("{:.1}", baseline.as_secs_f64() * 1e3),
        format!("{:.1}", baseline.as_secs_f64() * 1e6 / iterations as f64),
        "1.00x".into(),
        "—".into(),
    ]);
    for threads in [2usize, 4, 8] {
        let start = Instant::now();
        let sharded_config =
            LrgpConfig { parallelism: Parallelism::Threads(threads), ..config };
        let mut parallel = Engine::new(problem.clone(), sharded_config);
        parallel.run(iterations);
        let elapsed = start.elapsed();
        let utility = parallel.trace().utility.last().unwrap_or(0.0);
        let identical = utility.to_bits() == reference_utility.to_bits();
        assert!(
            identical,
            "threads {threads}: utility diverged ({utility:?} vs {reference_utility:?})"
        );
        table.row(vec![
            "sharded".into(),
            threads.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", elapsed.as_secs_f64() * 1e6 / iterations as f64),
            format!("{:.2}x", baseline.as_secs_f64() / elapsed.as_secs_f64()),
            "yes".into(),
        ]);
        eprintln!("done: {threads} worker(s)");
    }
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("parallel_scaling.csv"));
    println!("CSV written to {}", args.out_path("parallel_scaling.csv").display());
}
