//! Table 2 — quality of results for LRGP and simulated annealing as the
//! system grows (§4.3–4.4).
//!
//! For each of the six workloads: LRGP's iterations-until-convergence and
//! converged utility, the best SA run over start temperatures
//! {5, 10, 50, 100} × the configured step budgets, and the relative utility
//! increase of LRGP over SA.
//!
//! Expected shape (paper Table 2): LRGP beats SA on every workload; the gap
//! widens as the number of independent variables grows; LRGP utility scales
//! linearly with consumer-node count; iterations-until-convergence stays
//! flat (21–24 in the paper).

use lrgp_bench::runners::{lrgp_converge, sa_best, utility_increase_percent};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::Table2Workload;

fn main() {
    let args = Args::parse();
    println!(
        "# Table 2 — LRGP vs simulated annealing (SA sweep: T0 in {{5,10,50,100}} x steps {:?})\n",
        args.sa_steps
    );
    let mut table = Table::new(vec![
        "workload",
        "SA start temp",
        "SA steps",
        "SA runtime (s)",
        "SA utility",
        "LRGP iterations",
        "LRGP utility",
        "utility increase",
    ]);
    for workload in Table2Workload::ALL {
        let problem = workload.build();
        let lrgp = lrgp_converge(&problem, args.iters.max(400));
        let best = sa_best(&problem, &args.sa_steps, args.seed);
        let increase =
            utility_increase_percent(lrgp.utility, best.outcome.best_utility);
        table.row(vec![
            workload.label().to_string(),
            format!("{}", best.start_temperature),
            format!("{:.0e}", best.total_steps as f64),
            format!("{:.1}", best.outcome.elapsed.as_secs_f64()),
            format!("{:.0}", best.outcome.best_utility),
            lrgp.converged_at.map(|k| k.to_string()).unwrap_or_else(|| "> budget".into()),
            format!("{:.0}", lrgp.utility),
            format!("{increase:.2}%"),
        ]);
        eprintln!("done: {}", workload.label());
    }
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("table2.csv"));
    println!("CSV written to {}", args.out_path("table2.csv").display());
}
