//! Integrated rate–reliability allocation vs a fixed-reliability baseline.
//!
//! Qualitative reproduction of the central claim of the joint
//! rate–reliability framework (Lee, Chiang, Calderbank, *Jointly optimal
//! congestion and contention control*): when links are lossy and redundancy
//! couples per-flow reliability ρ back into link usage, letting the
//! optimizer choose ρ weakly dominates every policy that pins ρ at its
//! ceiling — the fixed-ρ feasible set is contained in the free-ρ one, so
//! the integrated optimum can only be at least as good.
//!
//! Two baselines run per workload, both under the joint objective
//! `Σ n_j U_j(r_i) + Σ mass_i ln(ρ_i)`:
//!
//! * **fixed** — every flow's ρ bounds collapsed to `[ρ_max, ρ_max]`
//!   ("always fully reliable"), so only rates adapt;
//! * **integrated** — ρ free inside the generator bounds, so flows on
//!   lossy links can trade reliability away for rate headroom.
//!
//! Output: `results/reliability.csv` and `results/reliability.md`.

use lrgp::{Engine, LrgpConfig, Reliability};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::{
    lossy_link_bottleneck_workload, mixed_loss_workload, GENERATOR_RHO_BOUNDS,
};
use lrgp_model::{
    Problem, ProblemBuilder, RateBounds, ReliabilitySpec, RhoBounds, UtilityShape,
};

struct Run {
    utility: f64,
    mean_rho: f64,
}

fn solve_joint(problem: &Problem, iters: usize) -> Run {
    let config = LrgpConfig { reliability: Reliability::Joint, ..LrgpConfig::default() };
    let mut engine = Engine::new(problem.clone(), config);
    let outcome = engine.run_until_converged(iters);
    let rhos = engine.rhos();
    Run {
        utility: outcome.utility,
        mean_rho: rhos.iter().sum::<f64>() / rhos.len().max(1) as f64,
    }
}

/// The link-bottleneck topology with the paper's power utilities
/// (`rank · r^0.75`) instead of log ones. With log rate utilities the
/// reliability mass equals the rate mass and `1/ρ` beats the induced
/// capacity cost `k/(1+kρ)` at every ρ, so ρ rides its ceiling; with
/// power utilities the rate side's marginal value per unit of capacity
/// grows with `r^0.75` and overtakes the `ln ρ` gain, producing interior
/// reliability on lossy links.
fn pow_lossy_bottleneck(link_capacity: f64, loss: f64) -> Problem {
    let mut b = ProblemBuilder::new();
    let src0 = b.add_labeled_node(1e9, "src0");
    let src1 = b.add_labeled_node(1e9, "src1");
    let sink = b.add_labeled_node(1e9, "sink");
    let link = b.add_link_between(link_capacity, src0, sink);
    let bounds = RateBounds::new(1.0, 10_000.0).expect("literal bounds valid");
    let f0 = b.add_flow(src0, bounds);
    let f1 = b.add_flow(src1, bounds);
    for f in [f0, f1] {
        b.set_link_cost(f, link, 1.0);
        b.set_node_cost(f, sink, 0.001);
    }
    b.add_class(f0, sink, 10, UtilityShape::Pow75.build(30.0), 0.001);
    b.add_class(f1, sink, 10, UtilityShape::Pow75.build(10.0), 0.001);
    b.set_reliability(ReliabilitySpec::uniform(2, 1, GENERATOR_RHO_BOUNDS, loss, 1.0));
    b.build().expect("pow bottleneck workload is structurally valid")
}

/// Collapses every flow's ρ range to a point at its current ceiling.
fn pin_rho_at_max(problem: &Problem) -> Problem {
    let mut pinned = problem.clone();
    for flow in problem.flow_ids() {
        let max = problem.rho_bounds(flow).map_or(1.0, |b| b.max);
        let fixed = RhoBounds::fixed(max).expect("generator ceilings are valid ρ values");
        pinned = pinned
            .with_rho_bounds(flow, fixed)
            .expect("pinning ρ on a spec-carrying workload cannot fail");
    }
    pinned
}

fn main() {
    let args = Args::parse();
    let iters = args.iters.max(2000);

    let mut table = Table::new(vec![
        "workload",
        "loss",
        "utility_fixed",
        "utility_integrated",
        "advantage_pct",
        "mean_rho_integrated",
    ]);

    let mut compare = |name: &str, loss_label: String, problem: &Problem| {
        let fixed = solve_joint(&pin_rho_at_max(problem), iters);
        let integrated = solve_joint(problem, iters);
        let advantage =
            (integrated.utility - fixed.utility) / fixed.utility.abs().max(f64::MIN_POSITIVE);
        table.row(vec![
            name.into(),
            loss_label,
            format!("{:.1}", fixed.utility),
            format!("{:.1}", integrated.utility),
            format!("{:.3}", advantage * 100.0),
            format!("{:.4}", integrated.mean_rho),
        ]);
    };

    for loss in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let problem = lossy_link_bottleneck_workload(100.0, loss);
        compare("log_bottleneck", format!("{loss:.2}"), &problem);
    }
    for loss in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let problem = pow_lossy_bottleneck(100.0, loss);
        compare("pow75_bottleneck", format!("{loss:.2}"), &problem);
    }
    let mixed = mixed_loss_workload(4, 500.0, args.seed);
    compare("mixed_loss_4", "mixed".into(), &mixed);

    println!("# Integrated rate–reliability vs fixed-ρ allocation\n");
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("reliability.csv"));

    let md = format!(
        "# Integrated rate–reliability vs fixed-ρ allocation\n\n\
         Both columns optimize the joint objective `Σ n_j U_j(r_i) + Σ mass_i ln ρ_i`\n\
         with redundancy coupling ρ into link usage; *fixed* pins every flow at\n\
         `ρ = ρ_max`, *integrated* lets ρ float inside the generator bounds.\n\
         Because the fixed-ρ feasible set is a subset of the free-ρ one, the\n\
         integrated utility is always ≥ the fixed one.\n\n\
         With **log** rate utilities the reliability mass equals the rate mass\n\
         and the marginal reliability value `1/ρ` beats the induced capacity\n\
         cost at every ρ, so the integrated optimum keeps ρ at its ceiling and\n\
         the two columns coincide — full reliability *is* optimal there. With\n\
         the paper's **power** utilities (`rank · r^0.75`) the rate side's\n\
         marginal value per unit of capacity grows with the allocated rate and\n\
         overtakes the `ln ρ` gain, so flows on lossy links trade reliability\n\
         away for rate headroom and the integrated allocation strictly wins —\n\
         the qualitative joint rate–reliability result of Lee–Chiang–Calderbank.\n\n{}",
        table.to_markdown()
    );
    std::fs::write(args.out_path("reliability.md"), md)
        .expect("cannot write reliability.md");
}
