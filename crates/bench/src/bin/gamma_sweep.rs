//! Quantitative γ sensitivity sweep (the analysis behind Fig. 1's three
//! curves): for a geometric grid of fixed step sizes, measure iterations to
//! convergence, final utility, and residual oscillation amplitude, with the
//! adaptive heuristic as the reference row.

use lrgp::{Engine, GammaMode, LrgpConfig};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::base_workload;
use lrgp_num::series::ConvergenceCriterion;

fn main() {
    let args = Args::parse();
    let iters = args.iters.max(400);
    let criterion = ConvergenceCriterion::paper_default();
    let mut table = Table::new(vec![
        "gamma",
        "converged at",
        "final utility",
        "tail amplitude %",
    ]);
    let mut run = |label: String, mode: GammaMode| {
        let mut engine =
            Engine::new(base_workload(), LrgpConfig { gamma: mode, ..Default::default() });
        engine.run(iters);
        let trace = &engine.trace().utility;
        let amp = trace.relative_amplitude(50).unwrap_or(f64::NAN);
        table.row(vec![
            label,
            trace
                .first_convergence(&criterion)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "never".into()),
            format!("{:.0}", trace.last().unwrap()),
            format!("{:.4}", amp * 100.0),
        ]);
    };
    for gamma in [1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001] {
        run(format!("{gamma}"), GammaMode::fixed(gamma));
    }
    run("adaptive".into(), GammaMode::adaptive());
    println!("# γ sensitivity sweep (base workload, {iters} iterations)\n");
    println!("{}", table.to_markdown());
    println!(
        "Expected shape: amplitude shrinks and convergence slows as γ falls;\n\
         the adaptive controller matches the best fixed setting on both axes."
    );
    table.write_csv(&args.out_path("gamma_sweep.csv"));
}
