//! Figure 2 — adaptive γ versus fixed γ on the base workload.
//!
//! Expected shape (paper §4.2): the adaptive heuristic converges faster
//! than the fixed settings and keeps only small residual fluctuations
//! (inset of Fig. 2 around iterations 200–220).

use lrgp::GammaMode;
use lrgp_bench::runners::lrgp_trace;
use lrgp_bench::{table::write_series_csv, Args, Table};
use lrgp_model::workloads::base_workload;
use lrgp_num::series::ConvergenceCriterion;

fn main() {
    let args = Args::parse();
    let problem = base_workload();
    let configs: Vec<(&str, GammaMode)> = vec![
        ("adaptive", GammaMode::adaptive()),
        ("fixed_0.1", GammaMode::fixed(0.1)),
        ("fixed_0.01", GammaMode::fixed(0.01)),
    ];
    let traces: Vec<_> = configs
        .iter()
        .map(|(_, g)| lrgp_trace(&problem, *g, args.iters))
        .collect();

    let series: Vec<(&str, &[f64])> = configs
        .iter()
        .zip(&traces)
        .map(|((name, _), t)| (*name, t.values()))
        .collect();
    write_series_csv(&args.out_path("fig2.csv"), &series);

    let criterion = ConvergenceCriterion::paper_default();
    let mut table =
        Table::new(vec!["gamma mode", "converged at iteration", "final utility", "inset amplitude (200-220)"]);
    for ((name, _), t) in configs.iter().zip(&traces) {
        let conv = t
            .first_convergence(&criterion)
            .map(|k| k.to_string())
            .unwrap_or_else(|| "never".into());
        let inset = t.window(200, 220);
        let amp = if inset.is_empty() {
            "n/a".to_string()
        } else {
            let max = inset.iter().cloned().fold(f64::MIN, f64::max);
            let min = inset.iter().cloned().fold(f64::MAX, f64::min);
            format!("{:.0}", max - min)
        };
        table.row(vec![
            name.to_string(),
            conv,
            format!("{:.0}", t.last().unwrap()),
            amp,
        ]);
    }
    println!("# Figure 2 — adaptive γ vs fixed γ ({} iterations)\n", args.iters);
    println!("{}", table.to_markdown());
    println!("Full series written to {}", args.out_path("fig2.csv").display());
}
