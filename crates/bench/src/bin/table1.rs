//! Table 1 — prints the base workload specification (the experiment
//! *input*, reproduced for reference).

use lrgp_bench::{Args, Table};
use lrgp_model::workloads::{self, TABLE1};

fn main() {
    let args = Args::parse();
    let mut table = Table::new(vec!["class", "flow", "nodes", "n_max", "rank"]);
    for (k, row) in TABLE1.iter().enumerate() {
        table.row(vec![
            format!("{},{}", 2 * k, 2 * k + 1),
            row.flow.to_string(),
            format!("S{} S{}", row.nodes[0], row.nodes[1]),
            row.max_population.to_string(),
            row.rank.to_string(),
        ]);
    }
    println!("# Table 1 — base workload\n");
    println!("{}", table.to_markdown());
    println!(
        "Resource model: F = {}, G = {}, c_b = {:e}; rate bounds [{}, {}].",
        workloads::GRYPHON_FLOW_NODE_COST,
        workloads::GRYPHON_CONSUMER_COST,
        workloads::GRYPHON_NODE_CAPACITY,
        workloads::PAPER_RATE_MIN,
        workloads::PAPER_RATE_MAX,
    );
    let p = workloads::base_workload();
    println!(
        "Built problem: {} flows, {} classes, {} nodes, total demand {} consumers.",
        p.num_flows(),
        p.num_classes(),
        p.num_nodes(),
        p.total_demand()
    );
    table.write_csv(&args.out_path("table1.csv"));
}
