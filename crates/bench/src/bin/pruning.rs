//! Two-stage path pruning (§2.4): solve, zero the `F_{b,i}` coefficients of
//! branches whose classes ended up empty, re-solve.
//!
//! On the paper's workloads flows are only routed where classes exist and
//! `F` is small relative to capacity, so the gain is modest; the dedicated
//! dead-branch workload shows the mechanism paying off when pass-through
//! routing is expensive.

use lrgp::{two_stage_solve, LrgpConfig};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::{base_workload, Table2Workload};
use lrgp_model::{ProblemBuilder, RateBounds, Utility};

/// A workload with an expensive dead branch: flow 0 is routed through a
/// congested node where its only class is worthless.
fn dead_branch_workload() -> lrgp_model::Problem {
    let mut b = ProblemBuilder::new();
    let s0 = b.add_labeled_node(1e12, "src0");
    let s1 = b.add_labeled_node(1e12, "src1");
    let shared = b.add_labeled_node(50_000.0, "congested");
    let other = b.add_labeled_node(1e12, "roomy");
    let f0 = b.add_flow(s0, RateBounds::new(10.0, 1000.0).unwrap());
    let f1 = b.add_flow(s1, RateBounds::new(10.0, 1000.0).unwrap());
    b.set_node_cost(f0, other, 1.0);
    b.add_class(f0, other, 100, Utility::log(50.0), 5.0);
    b.set_node_cost(f0, shared, 40.0);
    b.add_class(f0, shared, 10, Utility::log(0.001), 45.0);
    b.set_node_cost(f1, shared, 1.0);
    b.add_class(f1, shared, 200, Utility::log(80.0), 4.0);
    b.build().expect("dead-branch workload is valid")
}

fn main() {
    let args = Args::parse();
    let mut table = Table::new(vec![
        "workload",
        "stage-1 utility",
        "branches pruned",
        "stage-2 utility",
        "gain",
    ]);
    let mut run = |name: &str, problem: &lrgp_model::Problem| {
        let out = two_stage_solve(problem, LrgpConfig::default(), args.iters.max(400));
        table.row(vec![
            name.to_string(),
            format!("{:.0}", out.stage1.utility),
            out.pruned_branches.to_string(),
            format!("{:.0}", out.stage2.utility),
            format!("{:+.2}%", out.relative_gain() * 100.0),
        ]);
    };
    run("base workload", &base_workload());
    run("24 flows, 12 c-nodes", &Table2Workload::Flows24Cnodes12.build());
    run("dead-branch workload", &dead_branch_workload());
    println!("# Two-stage path pruning (§2.4)\n");
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("pruning.csv"));
}
