//! How much does LRGP leave on the table? Seed simulated annealing with
//! LRGP's converged allocation and let it search.
//!
//! If SA (which can take backward steps and explores the exact discrete
//! space) barely improves on LRGP's solution, LRGP's result is close to a
//! strong local optimum — evidence beyond the paper's Table 2 comparison,
//! where SA started from scratch.

use lrgp::{Engine, LrgpConfig};
use lrgp_anneal::{anneal_from, AnnealConfig};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::{base_workload_with_shape, Table2Workload};
use lrgp_model::UtilityShape;

fn main() {
    let args = Args::parse();
    let steps = args.sa_steps.iter().copied().max().unwrap_or(1_000_000);
    let mut table = Table::new(vec![
        "workload",
        "LRGP utility",
        "after SA polish",
        "improvement",
        "polish accepted moves",
    ]);
    let mut run = |name: &str, problem: lrgp_model::Problem| {
        let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
        let lrgp = engine.run_until_converged(400);
        let polished = anneal_from(
            &problem,
            &engine.allocation(),
            &AnnealConfig::paper(5.0, steps, args.seed),
        );
        table.row(vec![
            name.to_string(),
            format!("{:.0}", lrgp.utility),
            format!("{:.0}", polished.best_utility),
            format!("{:+.3}%", (polished.best_utility - lrgp.utility) / lrgp.utility * 100.0),
            polished.accepted.to_string(),
        ]);
        eprintln!("done: {name}");
    };
    run("base (log)", Table2Workload::Base.build());
    run("base (r^0.5)", base_workload_with_shape(UtilityShape::Pow50));
    run("12 flows, 6 c-nodes", Table2Workload::Flows12Cnodes6.build());
    println!("# SA polish of LRGP solutions ({steps} SA steps)\n");
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("polish.csv"));
}
