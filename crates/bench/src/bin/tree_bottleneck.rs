//! Extension experiment: dissemination trees with shrinking link capacity.
//!
//! The paper's workloads are node-constrained by construction (§4.1 fn. 3).
//! Here two flows share a broker tree; sweeping the per-edge link capacity
//! moves the binding constraint from the leaf nodes (ample links) to the
//! shared links (tight links), and LRGP's joint link+node pricing should
//! track the crossover: total rate pinned at the link capacity once links
//! bind, admission re-balancing to compensate.

use lrgp::{Engine, LrgpConfig};
use lrgp_bench::{Args, Table};
use lrgp_overlay::TreeWorkload;

fn main() {
    let args = Args::parse();
    let mut table = Table::new(vec![
        "link capacity",
        "total rate",
        "total admitted",
        "utility",
        "binding constraint",
    ]);
    for link_capacity in [1e9, 1e3, 300.0, 150.0, 60.0, 20.0] {
        // Small populations keep consumer load light enough that the
        // node-bound total rate sits near ~260 msg/s; sweeping the link
        // capacity below that moves the binding constraint onto the links.
        let spec = TreeWorkload {
            link_capacity,
            node_capacity: 2e5,
            max_population: 20,
            rate_bounds: (1.0, 1000.0),
            ..TreeWorkload::default()
        };
        let inst = spec.build();
        let cfg = LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() };
        let mut engine = Engine::new(inst.problem.clone(), cfg);
        engine.run(args.iters.max(3000));
        let a = engine.allocation();
        let total_rate: f64 = a.rates().iter().sum();
        let total_admitted: f64 = a.populations().iter().sum();
        let link_bound = total_rate >= 0.9 * link_capacity;
        table.row(vec![
            format!("{link_capacity:.0}"),
            format!("{total_rate:.1}"),
            format!("{total_admitted:.0}"),
            format!("{:.0}", a.total_utility(&inst.problem)),
            if link_bound { "links".into() } else { "nodes".into() },
        ]);
    }
    println!("# Tree dissemination with link bottlenecks (2 flows, depth-2 binary tree)\n");
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("tree_bottleneck.csv"));
}
