//! Figure 4 — global utility trace when every class utility is
//! `rank · r^0.75` (the steepest shape of §4.5).
//!
//! Expected shape (paper §4.5): convergence is slower than with log
//! utilities because small price changes translate into large rate changes.

use lrgp::GammaMode;
use lrgp_bench::runners::lrgp_trace;
use lrgp_bench::{table::write_series_csv, Args, Table};
use lrgp_model::workloads::base_workload_with_shape;
use lrgp_model::UtilityShape;
use lrgp_num::series::ConvergenceCriterion;

fn main() {
    let args = Args::parse();
    let problem = base_workload_with_shape(UtilityShape::Pow75);
    let trace = lrgp_trace(&problem, GammaMode::adaptive(), args.iters);
    write_series_csv(&args.out_path("fig4.csv"), &[("utility_pow075", trace.values())]);

    let log_trace = lrgp_trace(
        &base_workload_with_shape(UtilityShape::Log),
        GammaMode::adaptive(),
        args.iters,
    );
    let criterion = ConvergenceCriterion::paper_default();
    let mut table = Table::new(vec!["utility shape", "converged at iteration", "final utility"]);
    for (name, t) in [("rank·r^0.75", &trace), ("rank·log(1+r)", &log_trace)] {
        table.row(vec![
            name.to_string(),
            t.first_convergence(&criterion)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "never".into()),
            format!("{:.0}", t.last().unwrap()),
        ]);
    }
    println!("# Figure 4 — utility trace for rank·r^0.75 ({} iterations)\n", args.iters);
    println!("{}", table.to_markdown());
    println!("Full series written to {}", args.out_path("fig4.csv").display());
}
