//! Figure 1 — the effect of damping: utility traces for fixed
//! γ ∈ {1, 0.1, 0.01} on the base workload with log utilities.
//!
//! Expected shape (paper §4.2): γ = 1 oscillates with large amplitude;
//! γ = 0.1 stabilizes within ~10 iterations; γ = 0.01 takes ~100.

use lrgp::GammaMode;
use lrgp_bench::runners::lrgp_trace;
use lrgp_bench::{table::write_series_csv, Args, Table};
use lrgp_model::workloads::base_workload;

fn main() {
    let args = Args::parse();
    let problem = base_workload();
    let gammas = [1.0, 0.1, 0.01];
    let traces: Vec<_> = gammas
        .iter()
        .map(|&g| lrgp_trace(&problem, GammaMode::fixed(g), args.iters))
        .collect();

    let series: Vec<(&str, &[f64])> = vec![
        ("gamma_1", traces[0].values()),
        ("gamma_0.1", traces[1].values()),
        ("gamma_0.01", traces[2].values()),
    ];
    write_series_csv(&args.out_path("fig1.csv"), &series);

    // Summary: amplitude over the final 50 iterations per γ.
    let mut table = Table::new(vec!["gamma", "final utility", "tail amplitude", "tail amplitude %"]);
    for (g, t) in gammas.iter().zip(&traces) {
        let n = t.len();
        let tail = t.window(n.saturating_sub(50), n);
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        table.row(vec![
            format!("{g}"),
            format!("{:.0}", t.last().unwrap()),
            format!("{:.0}", max - min),
            format!("{:.3}%", (max - min) / mean * 100.0),
        ]);
    }
    println!("# Figure 1 — the effect of damping ({} iterations)\n", args.iters);
    println!("{}", table.to_markdown());
    println!("Full series written to {}", args.out_path("fig1.csv").display());
}
