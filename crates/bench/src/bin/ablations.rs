//! Ablations of LRGP's design choices (DESIGN.md §5).
//!
//! * **Node price rule** — the paper's benefit–cost law (Eq. 12) vs a pure
//!   Low–Lapsley gradient on the node constraint.
//! * **Admission policy** — stop-at-first-block (paper) vs
//!   first-fit-decreasing.
//! * **Population integrality** — whole consumers (paper) vs the
//!   fractional relaxation (an upper bound on greedy node utility).
//! * **γ control** — adaptive vs the Fig. 1 fixed settings.

use lrgp::kernel::price::NodePriceRule;
use lrgp::{AdmissionPolicy, Engine, GammaMode, LrgpConfig, PopulationMode};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::base_workload;

fn run(config: LrgpConfig, iters: usize) -> (Option<usize>, f64) {
    let mut engine = Engine::new(base_workload(), config);
    let out = engine.run_until_converged(iters);
    (out.converged_at, out.utility)
}

fn main() {
    let args = Args::parse();
    let iters = args.iters.max(400);
    let base = LrgpConfig::default();
    let variants: Vec<(&str, LrgpConfig)> = vec![
        ("paper defaults (BC price, stop-at-block, integral, adaptive γ)", base),
        (
            "pure-gradient node price",
            LrgpConfig { node_price_rule: NodePriceRule::PureGradient, ..base },
        ),
        (
            "first-fit-decreasing admission",
            LrgpConfig { admission_policy: AdmissionPolicy::FirstFitDecreasing, ..base },
        ),
        (
            "fractional populations",
            LrgpConfig { population_mode: PopulationMode::Fractional, ..base },
        ),
        ("fixed γ = 0.1", LrgpConfig { gamma: GammaMode::fixed(0.1), ..base }),
        ("fixed γ = 0.01", LrgpConfig { gamma: GammaMode::fixed(0.01), ..base }),
        ("fixed γ = 1 (undamped)", LrgpConfig { gamma: GammaMode::fixed(1.0), ..base }),
    ];

    let mut table = Table::new(vec!["variant", "converged at", "final utility", "vs paper defaults"]);
    let (_, reference) = run(base, iters);
    for (name, config) in variants {
        let (converged, utility) = run(config, iters);
        table.row(vec![
            name.to_string(),
            converged.map(|k| k.to_string()).unwrap_or_else(|| format!("> {iters}")),
            format!("{utility:.0}"),
            format!("{:+.2}%", (utility - reference) / reference * 100.0),
        ]);
    }
    println!("# LRGP design ablations (base workload, {iters}-iteration budget)\n");
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("ablations.csv"));
    println!("CSV written to {}", args.out_path("ablations.csv").display());
}
