//! End-to-end calibration experiment: measure the pub/sub matching engines,
//! fit the `F̂ + Ĝ·n` cost model, and optimize a system built from the fit —
//! the paper's Gryphon-measurement pipeline (ref \[3\], §4.1) reproduced against
//! this repository's own broker substrate.

use lrgp::{Engine, LrgpConfig};
use lrgp_bench::{Args, Table};
use lrgp_pubsub::calibrate::{calibrate, problem_from_calibration, CalibrationConfig};
use lrgp_pubsub::matcher::{IndexMatcher, Matcher, NaiveMatcher};
use lrgp_pubsub::message::Schema;
use std::sync::Arc;

fn naive_from(filters: Vec<lrgp_pubsub::Filter>) -> NaiveMatcher {
    let mut m = NaiveMatcher::new();
    for f in filters {
        m.subscribe(f);
    }
    m
}

fn main() {
    let args = Args::parse();
    let schema = Arc::new(Schema::trade_data());
    let cfg = CalibrationConfig { seed: args.seed, ..CalibrationConfig::default() };

    let naive = calibrate(&schema, naive_from, &cfg);
    let index = calibrate(&schema, IndexMatcher::from_filters, &cfg);

    let mut fit = Table::new(vec!["engine", "F̂ (per message)", "Ĝ (per consumer·message)", "r²"]);
    for (name, est) in [("naive", &naive), ("counting index", &index)] {
        fit.row(vec![
            name.to_string(),
            format!("{:.2}", est.per_message),
            format!("{:.4}", est.per_consumer_message),
            format!("{:.5}", est.r_squared),
        ]);
    }
    println!("# Matching-cost calibration (trade-data schema, {} msgs/probe)\n", cfg.messages);
    println!("{}", fit.to_markdown());

    // Optimize the same logical system under both cost models.
    let mut opt = Table::new(vec![
        "engine",
        "utility",
        "rate sum",
        "admitted",
        "interpretation",
    ]);
    for (name, est) in [("naive", &naive), ("counting index", &index)] {
        let problem = problem_from_calibration(est, 4, 3, 2_000, 5e5, (10.0, 1000.0))
            .expect("calibrated problem valid");
        let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
        let out = engine.run_until_converged(args.iters.max(400));
        let a = engine.allocation();
        opt.row(vec![
            name.to_string(),
            format!("{:.0}", out.utility),
            format!("{:.1}", a.rates().iter().sum::<f64>()),
            format!("{:.0}", a.populations().iter().sum::<f64>()),
            "cheaper matching ⇒ more consumers/rate".to_string(),
        ]);
    }
    println!("{}", opt.to_markdown());
    println!(
        "A faster matching engine (smaller Ĝ) lets the same broker capacity\n\
         serve more admitted consumers at higher rates — the resource model\n\
         makes middleware engineering directly visible to the optimizer."
    );
    fit.write_csv(&args.out_path("calibration.csv"));
}
