//! Link-bottleneck pricing sanity experiment.
//!
//! The paper's workloads have no link bottlenecks (§4.1, footnote 3: link
//! pricing for rate control follows Low–Lapsley). This experiment builds
//! the complementary case: two flows share a single link whose capacity is
//! the only binding constraint. With log utilities the optimum is weighted
//! proportional fairness — rates split in proportion to `n_j · rank_j` —
//! which LRGP's Eq. 13 link pricing should find.

use lrgp::{Engine, GammaMode, LrgpConfig, TraceConfig};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::link_bottleneck_workload;
use lrgp_model::{FlowId, LinkId};

fn main() {
    let args = Args::parse();
    let capacity = 100.0;
    let problem = link_bottleneck_workload(capacity);
    let config = LrgpConfig {
        // Node prices are irrelevant here; give link pricing a usable step.
        gamma: GammaMode::adaptive(),
        link_gamma: 2e-3,
        trace: TraceConfig { link_prices: true, rates: true, ..Default::default() },
        ..LrgpConfig::default()
    };
    let mut engine = Engine::new(problem.clone(), config);
    engine.run(args.iters.max(2000));
    let allocation = engine.allocation();

    let r0 = allocation.rate(FlowId::new(0));
    let r1 = allocation.rate(FlowId::new(1));
    // Weighted shares: class masses are n·rank = 10·30 vs 10·10 → 3 : 1.
    // For S·log(1+r) utilities sharing one unit-cost link of capacity C the
    // optimum satisfies (1+r_i) ∝ S_i with Σ r_i = C.
    let (s0, s1) = (300.0, 100.0);
    let expect0 = (capacity + 2.0) * s0 / (s0 + s1) - 1.0;
    let expect1 = (capacity + 2.0) * s1 / (s0 + s1) - 1.0;

    let mut table = Table::new(vec!["quantity", "LRGP", "analytic optimum"]);
    table.row(vec!["rate flow0".into(), format!("{r0:.2}"), format!("{expect0:.2}")]);
    table.row(vec!["rate flow1".into(), format!("{r1:.2}"), format!("{expect1:.2}")]);
    table.row(vec![
        "link usage".into(),
        format!("{:.2}", allocation.link_usage(&problem, LinkId::new(0))),
        format!("{capacity:.2}"),
    ]);
    table.row(vec![
        "link price".into(),
        format!("{:.4}", engine.prices().link(LinkId::new(0))),
        format!("{:.4}", (s0 + s1) / (capacity + 2.0)), // S_i/(1+r_i) at optimum
    ]);
    println!("# Link-bottleneck pricing (capacity {capacity})\n");
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("link_pricing.csv"));
}
