//! Workload-churn stress experiment (extension of Fig. 3's dynamics).
//!
//! A random churn scenario hits the base workload every 25 iterations —
//! node capacities re-provisioned, class demand arriving and departing —
//! while LRGP keeps running. Reported per run: final utility, the worst
//! single-iteration relative utility drop, and whether the system re-quiets
//! between changes; fairness metrics summarize who bears the churn.

use lrgp::{run_scenario, Engine, LrgpConfig, RandomChurn};
use lrgp_bench::{table::write_series_csv, Args, Table};
use lrgp_model::workloads::base_workload;
use lrgp_model::AllocationReport;

fn main() {
    let args = Args::parse();
    let mut table = Table::new(vec![
        "seed",
        "changes",
        "final utility",
        "worst drop",
        "tail amplitude",
        "Jain fairness",
        "starved classes",
    ]);
    let mut all_series = Vec::new();
    for k in 0..5u64 {
        let seed = args.seed.wrapping_add(k);
        let problem = base_workload();
        let churn = RandomChurn { period: 25, changes: 8, seed, ..RandomChurn::default() };
        let scenario = churn.scenario(&problem);
        let mut engine = Engine::new(problem, LrgpConfig::default());
        let out = run_scenario(&mut engine, &scenario, args.iters.max(300))
            .expect("churn scenario must apply cleanly");
        let report = AllocationReport::new(engine.problem(), &engine.allocation());
        // Worst drop measured after the startup transient, so it reflects
        // churn (the first change fires at iteration 25).
        let vals = out.utility.values();
        let churn_drop = vals
            .windows(2)
            .skip(20)
            .map(|w| if w[0] > 0.0 { (w[0] - w[1]) / w[0] } else { 0.0 })
            .fold(0.0f64, f64::max);
        let tail = out
            .utility
            .relative_amplitude(10)
            .map(|a| format!("{:.3}%", a * 100.0))
            .unwrap_or_else(|| "n/a".into());
        table.row(vec![
            seed.to_string(),
            out.change_points.len().to_string(),
            format!("{:.0}", out.final_utility),
            format!("{:.1}%", churn_drop * 100.0),
            tail,
            format!("{:.3}", report.jain_admission_fairness),
            report.starved_classes().len().to_string(),
        ]);
        all_series.push((format!("seed{seed}"), out.utility));
    }
    println!("# Random churn on the base workload (8 changes per run)\n");
    println!("{}", table.to_markdown());
    let series: Vec<(&str, &[f64])> =
        all_series.iter().map(|(n, t)| (n.as_str(), t.values())).collect();
    write_series_csv(&args.out_path("churn.csv"), &series);
    table.write_csv(&args.out_path("churn_summary.csv"));
    println!("Series written to {}", args.out_path("churn.csv").display());
}
