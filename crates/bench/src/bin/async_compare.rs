//! Synchronous vs asynchronous distributed LRGP (§3.5 and the companion
//! technical report RC 23916).
//!
//! Runs both protocol modes on the base workload over a 10 ms-latency
//! overlay and compares converged utility, wall-clock (virtual) time and
//! message counts, including the effect of the price-averaging window.

use lrgp::LrgpConfig;
use lrgp_bench::{table::write_series_csv, Args, Table};
use lrgp_model::workloads::base_workload;
use lrgp_overlay::{
    run_asynchronous, run_synchronous, AsyncConfig, LatencyModel, SimTime, Topology,
};

fn main() {
    let args = Args::parse();
    let problem = base_workload();
    let topology = Topology::from_problem(
        &problem,
        LatencyModel::Uniform { latency: SimTime::from_millis(10) },
        SimTime::from_micros(200),
    );

    let sync = run_synchronous(&problem, &topology, LrgpConfig::default(), args.iters);
    let duration = SimTime::from_secs(10);
    let mut rows = Vec::new();
    rows.push((
        "synchronous".to_string(),
        sync.utility.last().unwrap_or(0.0),
        sync.duration,
        sync.messages,
    ));
    let mut async_series = Vec::new();
    for window in [1usize, 3, 5] {
        let out = run_asynchronous(
            &problem,
            &topology,
            AsyncConfig {
                duration,
                price_window: window,
                seed: args.seed,
                ..AsyncConfig::default()
            },
        );
        rows.push((
            format!("asynchronous (window {window})"),
            out.final_utility,
            out.duration,
            out.messages,
        ));
        async_series.push((format!("async_w{window}"), out.utility));
    }

    let mut table =
        Table::new(vec!["mode", "final utility", "virtual time", "messages"]);
    for (name, utility, time, messages) in &rows {
        table.row(vec![
            name.clone(),
            format!("{utility:.0}"),
            time.to_string(),
            messages.to_string(),
        ]);
    }
    println!("# Sync vs async distributed LRGP ({} sync rounds / 10 s async)\n", args.iters);
    println!("{}", table.to_markdown());

    let mut series: Vec<(&str, &[f64])> = vec![("sync", sync.utility.values())];
    for (name, ts) in &async_series {
        series.push((name.as_str(), ts.values()));
    }
    write_series_csv(&args.out_path("async_compare.csv"), &series);
    println!("Series written to {}", args.out_path("async_compare.csv").display());
}
