//! Figure 3 — recovery from system changes: flow 5 (serving the
//! highest-ranked classes) is removed at iteration 150; the figure shows
//! utility over iterations 100–200 for adaptive vs fixed γ.
//!
//! Expected shape (paper §4.2): utility drops sharply at the removal, then
//! recovers much faster and with smaller fluctuations under adaptive γ.

use lrgp::{Engine, GammaMode, LrgpConfig};
use lrgp_bench::{table::write_series_csv, Args, Table};
use lrgp_model::workloads::base_workload;
use lrgp_model::{FlowId, ProblemDelta};
use lrgp_num::series::TimeSeries;

const REMOVAL_ITERATION: usize = 150;

fn run(gamma: GammaMode, iters: usize) -> TimeSeries {
    let mut engine = Engine::new(
        base_workload(),
        LrgpConfig { gamma, ..LrgpConfig::default() },
    );
    engine.run(REMOVAL_ITERATION);
    engine
        .apply_delta(&ProblemDelta::new().remove_flow(FlowId::new(5)))
        .expect("flow 5 exists in the base workload");
    engine.run(iters.saturating_sub(REMOVAL_ITERATION));
    engine.trace().utility.clone()
}

fn recovery_iteration(t: &TimeSeries) -> Option<usize> {
    // First iteration after the removal at which the utility stays within
    // 0.5 % of its final value.
    let final_u = t.last()?;
    let vals = t.values();
    (REMOVAL_ITERATION..vals.len())
        .find(|&k| vals[k..].iter().all(|&u| (u - final_u).abs() <= 0.005 * final_u))
}

fn main() {
    let args = Args::parse();
    let iters = args.iters.max(REMOVAL_ITERATION + 50);
    let configs: Vec<(&str, GammaMode)> = vec![
        ("adaptive", GammaMode::adaptive()),
        ("fixed_0.1", GammaMode::fixed(0.1)),
        ("fixed_0.01", GammaMode::fixed(0.01)),
    ];
    let traces: Vec<_> = configs.iter().map(|(_, g)| run(*g, iters)).collect();

    let series: Vec<(&str, &[f64])> = configs
        .iter()
        .zip(&traces)
        .map(|((name, _), t)| (*name, t.values()))
        .collect();
    write_series_csv(&args.out_path("fig3.csv"), &series);

    let mut table = Table::new(vec![
        "gamma mode",
        "utility before removal",
        "utility after recovery",
        "stabilized by iteration",
    ]);
    for ((name, _), t) in configs.iter().zip(&traces) {
        table.row(vec![
            name.to_string(),
            format!("{:.0}", t.values()[REMOVAL_ITERATION - 1]),
            format!("{:.0}", t.last().unwrap()),
            recovery_iteration(t).map(|k| k.to_string()).unwrap_or_else(|| "never".into()),
        ]);
    }
    println!(
        "# Figure 3 — recovery after removing flow 5 at iteration {REMOVAL_ITERATION}\n"
    );
    println!("{}", table.to_markdown());
    println!("Full series written to {}", args.out_path("fig3.csv").display());
}
