//! Table 3 — convergence and quality of results as the class utility shape
//! varies (§4.5): `rank · log(1+r)` and `rank · r^k` for k = 0.25/0.5/0.75.
//!
//! Expected shape (paper Table 3): iterations-until-convergence increases
//! with the exponent k; LRGP matches or beats the best SA run on every
//! shape, with the margin shrinking for steeper utilities.

use lrgp_bench::runners::{lrgp_converge, sa_best, utility_increase_percent};
use lrgp_bench::{Args, Table};
use lrgp_model::workloads::base_workload_with_shape;
use lrgp_model::UtilityShape;

fn main() {
    let args = Args::parse();
    println!(
        "# Table 3 — utility-shape sensitivity (SA sweep: T0 in {{5,10,50,100}} x steps {:?})\n",
        args.sa_steps
    );
    let mut table = Table::new(vec![
        "utility function",
        "SA start temp",
        "SA steps",
        "SA runtime (s)",
        "SA utility",
        "LRGP iterations",
        "LRGP utility",
        "utility increase",
    ]);
    for shape in UtilityShape::ALL {
        let problem = base_workload_with_shape(shape);
        let lrgp = lrgp_converge(&problem, args.iters.max(400));
        let best = sa_best(&problem, &args.sa_steps, args.seed);
        let increase =
            utility_increase_percent(lrgp.utility, best.outcome.best_utility);
        table.row(vec![
            shape.label().to_string(),
            format!("{}", best.start_temperature),
            format!("{:.0e}", best.total_steps as f64),
            format!("{:.1}", best.outcome.elapsed.as_secs_f64()),
            format!("{:.0}", best.outcome.best_utility),
            lrgp.converged_at.map(|k| k.to_string()).unwrap_or_else(|| "> budget".into()),
            format!("{:.0}", lrgp.utility),
            format!("{increase:.2}%"),
        ]);
        eprintln!("done: {}", shape.label());
    }
    println!("{}", table.to_markdown());
    table.write_csv(&args.out_path("table3.csv"));
    println!("CSV written to {}", args.out_path("table3.csv").display());
}
