//! Shared experiment runners used by the figure/table binaries.

use lrgp::{Engine, GammaMode, LrgpConfig, RunOutcome, TraceConfig};
use lrgp_anneal::{sweep, SweepRun};
use lrgp_model::Problem;
use lrgp_num::series::TimeSeries;

/// The paper's SA start temperatures (§4.4).
pub const PAPER_TEMPERATURES: [f64; 4] = [5.0, 10.0, 50.0, 100.0];

/// Runs LRGP for exactly `iters` iterations with the given γ mode and
/// returns the utility trace.
pub fn lrgp_trace(problem: &Problem, gamma: GammaMode, iters: usize) -> TimeSeries {
    let config = LrgpConfig { gamma, trace: TraceConfig::default(), ..LrgpConfig::default() };
    let mut engine = Engine::new(problem.clone(), config);
    engine.run(iters);
    engine.trace().utility.clone()
}

/// Runs LRGP to convergence (paper criterion) with the default adaptive γ.
pub fn lrgp_converge(problem: &Problem, max_iters: usize) -> RunOutcome {
    let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
    engine.run_until_converged(max_iters)
}

/// Runs the paper's full SA sweep (all start temperatures × all step
/// budgets) and returns the best run.
pub fn sa_best(problem: &Problem, step_budgets: &[u64], seed: u64) -> SweepRun {
    let runs = sweep(problem, &PAPER_TEMPERATURES, step_budgets, seed);
    runs.into_iter().next().expect("sweep always has at least one run")
}

/// Percentage by which `lrgp` exceeds `sa` (the paper's "Utility Increase"
/// column).
pub fn utility_increase_percent(lrgp: f64, sa: f64) -> f64 {
    if sa == 0.0 {
        return f64::INFINITY;
    }
    (lrgp - sa) / sa * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrgp_model::workloads::base_workload;

    #[test]
    fn lrgp_trace_has_requested_length() {
        let p = base_workload();
        let t = lrgp_trace(&p, GammaMode::fixed(0.1), 30);
        assert_eq!(t.len(), 30);
        assert!(t.last().unwrap() > 0.0);
    }

    #[test]
    fn lrgp_converge_reports_positive_utility() {
        let p = base_workload();
        let out = lrgp_converge(&p, 250);
        assert!(out.converged_at.is_some());
        assert!(out.utility > 1e6);
    }

    #[test]
    fn sa_best_picks_highest_utility() {
        let p = base_workload();
        let best = sa_best(&p, &[20_000], 1);
        assert!(best.outcome.best_utility > 0.0);
        assert!(PAPER_TEMPERATURES.contains(&best.start_temperature));
    }

    #[test]
    fn utility_increase_math() {
        assert!((utility_increase_percent(106.47, 100.0) - 6.47).abs() < 1e-9);
        assert_eq!(utility_increase_percent(1.0, 0.0), f64::INFINITY);
        assert!(utility_increase_percent(90.0, 100.0) < 0.0);
    }
}
