//! Markdown table and CSV emission.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned Markdown table builder.
///
/// # Examples
///
/// ```
/// use lrgp_bench::Table;
/// let mut t = Table::new(vec!["workload", "utility"]);
/// t.row(vec!["base".into(), "1327486".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| workload | utility |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (headers + rows). Cells containing commas, quotes or
    /// newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let headers: Vec<String> = self.headers.iter().map(|h| escape(h)).collect();
        let _ = writeln!(out, "{}", headers.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (experiment binaries fail loudly).
    pub fn write_csv(&self, path: &Path) {
        std::fs::write(path, self.to_csv())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
}

/// Writes aligned per-iteration series as CSV: one `iteration` column plus
/// one column per named series. Series may have different lengths; missing
/// cells are left empty.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_series_csv(path: &Path, series: &[(&str, &[f64])]) {
    let mut out = String::new();
    let mut header = vec!["iteration".to_string()];
    header.extend(series.iter().map(|(n, _)| n.to_string()));
    out.push_str(&header.join(","));
    out.push('\n');
    let len = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![(i + 1).to_string()];
        for (_, v) in series {
            row.push(v.get(i).map(|x| format!("{x}")).unwrap_or_default());
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_render() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_quotes_cells_with_commas_and_quotes() {
        let mut t = Table::new(vec!["w", "v"]);
        t.row(vec!["6 flows, 3 c-nodes".into(), "say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "w,v\n\"6 flows, 3 c-nodes\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn series_csv_pads_short_columns() {
        let dir = std::env::temp_dir().join("lrgp_bench_test_series");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        write_series_csv(&path, &[("x", &[1.0, 2.0]), ("y", &[5.0])]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "iteration,x,y\n1,1,5\n2,2,\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
