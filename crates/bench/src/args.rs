//! Minimal command-line argument handling shared by the experiment
//! binaries (kept dependency-free on purpose).

use std::path::PathBuf;

/// Common options for the experiment binaries.
///
/// Recognized flags:
///
/// * `--out DIR` — output directory for CSV/JSON (default `results/`).
/// * `--seed N` — RNG seed (default 42).
/// * `--iters N` — LRGP iteration budget (default 250, as in the paper's
///   figures).
/// * `--steps N[,N...]` — SA step budgets (default `100000,1000000`).
/// * `--paper` — use the paper's full SA budgets `10⁶,10⁷,10⁸` (slow:
///   minutes per workload).
/// * `--quick` — tiny budgets for smoke-testing (`10⁴,10⁵`).
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Output directory.
    pub out: PathBuf,
    /// RNG seed.
    pub seed: u64,
    /// LRGP iteration budget.
    pub iters: usize,
    /// SA step budgets to sweep.
    pub sa_steps: Vec<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            out: PathBuf::from("results"),
            seed: 42,
            iters: 250,
            sa_steps: vec![100_000, 1_000_000],
        }
    }
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values —
    /// these binaries are developer tools, not long-lived services.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    ///
    /// Not the std `FromIterator` trait: this is fallible-by-panic parsing
    /// of CLI tokens, not a collection conversion.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--out" => {
                    args.out = PathBuf::from(it.next().expect("--out requires a directory"));
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .expect("--seed requires a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--iters" => {
                    args.iters = it
                        .next()
                        .expect("--iters requires a value")
                        .parse()
                        .expect("--iters must be an integer");
                }
                "--steps" => {
                    let spec = it.next().expect("--steps requires a comma-separated list");
                    args.sa_steps = spec
                        .split(',')
                        .map(|s| s.trim().parse().expect("--steps entries must be integers"))
                        .collect();
                }
                "--paper" => {
                    args.sa_steps = vec![1_000_000, 10_000_000, 100_000_000];
                }
                "--quick" => {
                    args.sa_steps = vec![10_000, 100_000];
                    args.iters = 100;
                }
                other => panic!(
                    "unknown flag {other}; see crate docs for --out/--seed/--iters/--steps/--paper/--quick"
                ),
            }
        }
        args
    }

    /// Ensures the output directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, file: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("cannot create output directory");
        self.out.join(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a, Args::default());
        assert_eq!(a.iters, 250);
    }

    #[test]
    fn parses_each_flag() {
        let a = parse(&[
            "--out", "/tmp/x", "--seed", "7", "--iters", "10", "--steps", "100,200",
        ]);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.seed, 7);
        assert_eq!(a.iters, 10);
        assert_eq!(a.sa_steps, vec![100, 200]);
    }

    #[test]
    fn paper_and_quick_presets() {
        assert_eq!(parse(&["--paper"]).sa_steps, vec![1_000_000, 10_000_000, 100_000_000]);
        let q = parse(&["--quick"]);
        assert_eq!(q.sa_steps, vec![10_000, 100_000]);
        assert_eq!(q.iters, 100);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        let _ = parse(&["--bogus"]);
    }
}
