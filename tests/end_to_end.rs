//! End-to-end integration tests spanning model → optimizer → baselines →
//! overlay, asserting the *shapes* the paper reports.

use lrgp::{Engine, GammaMode, LrgpConfig};
use lrgp_anneal::{anneal, AnnealConfig};
use lrgp_model::workloads::{self, Table2Workload};
use lrgp_model::UtilityShape;

/// Paper §4.4 / Table 2: LRGP beats the best SA run on every workload.
/// (SA gets a moderate budget here to keep CI fast; the gap only widens
/// with smaller budgets.)
#[test]
fn lrgp_beats_simulated_annealing_on_all_table2_workloads() {
    for workload in Table2Workload::ALL {
        let problem = workload.build();
        let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
        let lrgp = engine.run_until_converged(400);
        let sa = anneal(&problem, &AnnealConfig::paper(50.0, 2_000_000, 42));
        assert!(
            lrgp.utility > sa.best_utility,
            "{}: LRGP {} vs SA {}",
            workload.label(),
            lrgp.utility,
            sa.best_utility
        );
    }
}

/// Paper §4.3: LRGP utility grows linearly with consumer-node count and
/// with system copies.
#[test]
fn utility_scales_linearly_with_size() {
    let run = |w: Table2Workload| {
        let mut e = Engine::new(w.build(), LrgpConfig::default());
        e.run_until_converged(400).utility
    };
    let base = run(Table2Workload::Base);
    for (w, factor) in [
        (Table2Workload::Flows12Cnodes6, 2.0),
        (Table2Workload::Flows24Cnodes12, 4.0),
        (Table2Workload::Flows6Cnodes6, 2.0),
        (Table2Workload::Flows6Cnodes12, 4.0),
        (Table2Workload::Flows6Cnodes24, 8.0),
    ] {
        let u = run(w);
        let ratio = u / base;
        assert!(
            (ratio - factor).abs() / factor < 0.05,
            "{}: expected ~{factor}x base, got {ratio:.3}x",
            w.label()
        );
    }
}

/// Paper §4.3 / Table 2: iterations-until-convergence stays flat as the
/// system grows (21–24 in the paper; we assert a tight band around our
/// measured value).
#[test]
fn convergence_iterations_flat_across_scaling() {
    let iters: Vec<usize> = Table2Workload::ALL
        .iter()
        .map(|w| {
            let mut e = Engine::new(w.build(), LrgpConfig::default());
            e.run_until_converged(400).converged_at.expect("must converge")
        })
        .collect();
    let min = *iters.iter().min().unwrap();
    let max = *iters.iter().max().unwrap();
    assert!(
        max - min <= 10,
        "convergence iterations vary too much across scaling: {iters:?}"
    );
}

/// Paper §4.5 / Table 3: steeper power utilities converge more slowly than
/// r^0.25 (the paper's 23 → 28 → 39 trend for k = 0.25, 0.5, 0.75).
#[test]
fn steeper_power_utilities_converge_slower() {
    let converge = |shape: UtilityShape| {
        let mut e = Engine::new(
            workloads::base_workload_with_shape(shape),
            LrgpConfig::default(),
        );
        e.run_until_converged(600).converged_at.expect("must converge")
    };
    let k25 = converge(UtilityShape::Pow25);
    let k75 = converge(UtilityShape::Pow75);
    assert!(k25 < k75, "r^0.25 converged in {k25}, r^0.75 in {k75}");
}

/// Paper Fig. 1: undamped prices (γ = 1) leave a visibly oscillating
/// utility; damping (γ = 0.1) settles near the adaptive optimum.
#[test]
fn damping_controls_oscillation_amplitude() {
    let tail_amplitude = |gamma: GammaMode| {
        let mut e = Engine::new(workloads::base_workload(), LrgpConfig {
            gamma,
            ..LrgpConfig::default()
        });
        e.run(250);
        e.trace().utility.relative_amplitude(50).unwrap()
    };
    let undamped = tail_amplitude(GammaMode::fixed(1.0));
    let damped = tail_amplitude(GammaMode::fixed(0.1));
    assert!(undamped > 0.05, "γ=1 should oscillate, amplitude {undamped}");
    assert!(damped < 0.01, "γ=0.1 should be quiet, amplitude {damped}");
}

/// The paper's Fig. 3 dynamics, end to end: removal of the top flow drops
/// utility by roughly its classes' contribution, and the system re-settles.
#[test]
fn flow_removal_recovers_to_a_stable_feasible_state() {
    let mut e = Engine::new(workloads::base_workload(), LrgpConfig::default());
    e.run(150);
    let before = e.total_utility();
    e.apply_delta(&lrgp_model::ProblemDelta::new().remove_flow(lrgp_model::FlowId::new(5)))
        .unwrap();
    e.run(100);
    let after = e.total_utility();
    assert!(after > 0.3 * before && after < 0.7 * before, "{before} -> {after}");
    // Re-settled: quiet utility tail.
    let amp = e.trace().utility.relative_amplitude(10).unwrap();
    assert!(amp < 0.01, "post-removal amplitude {amp}");
    assert!(e.allocation().is_feasible(e.problem(), 1e-6));
}

/// SA quality improves monotonically-ish with step budget (§4.4's
/// "backward steps" story) — sanity for the baseline harness.
#[test]
fn sa_budget_scaling_sanity() {
    let p = workloads::base_workload();
    let small = anneal(&p, &AnnealConfig::paper(100.0, 100_000, 9));
    let large = anneal(&p, &AnnealConfig::paper(100.0, 2_000_000, 9));
    assert!(
        large.best_utility > small.best_utility,
        "2e6 steps {} should beat 1e5 steps {}",
        large.best_utility,
        small.best_utility
    );
}
