//! Differential-testing harness: every execution plan and every delta
//! path must be **bit-identical** to the sequential full-recompute
//! reference.
//!
//! Engines run step-by-step over randomized problems; after every single
//! iteration the harness compares rates, populations (admissions), node
//! prices, link prices, γ values, and the total-utility trace with
//! `f64::to_bits` equality — no tolerances anywhere. Any reassociated sum,
//! racy write, out-of-order reduction, or stale dirty-set entry shows up
//! as a hard failure with the iteration and element index.
//!
//! Six axes are covered, alone and combined:
//!
//! * **parallelism** — sharded over the persistent worker pool vs
//!   sequential, with dispatch forced so the cross-thread handoff runs
//!   even on single-CPU hosts;
//! * **incrementality** — dirty-set skipping vs full recompute;
//! * **deltas** — [`Engine::apply_delta`] vs the wholesale
//!   `replace_problem` oracle, mid-run;
//! * **churn scenarios** — capacity/population/bounds edits, flow removal,
//!   and flow addition while converging.
//! * **numerics** — the third oracle column: `Strict` engines (the
//!   default, and every engine above) stay bit-identical to the reference,
//!   while a `Vectorized` engine running the same delta schedule must track
//!   the reference within `1e-12` *relative total-utility drift* at
//!   convergence — its lane-batched sums and closed-form cohort solves are
//!   allowed to differ in the low-order bits, and nothing else.
//! * **reliability** — the fourth oracle column: a `Reliability::Off`
//!   engine on a spec-carrying lossy workload must be bit-identical to an
//!   engine on the spec-stripped problem (the pre-reliability engine, by
//!   construction), even while loss/ρ-bound deltas land on the
//!   spec-carrying side only; `Reliability::Joint` engines must be
//!   bit-identical across the whole plan matrix, ρ state included.

use lrgp::{
    Engine, IncrementalMode, LrgpConfig, Numerics, Parallelism, ProblemChange, Reliability,
    TraceConfig,
};
use lrgp_model::workloads::{
    link_bottleneck_workload, mixed_loss_workload, paper_workload, RandomWorkload,
};
use lrgp_model::{
    ClassId, ClassSpec, FlowId, FlowSpec, LinkId, NodeId, Problem, ProblemDelta, RateBounds,
    RhoBounds, Utility, UtilityShape,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts two f64 slices are bit-for-bit equal.
fn assert_bits_eq(label: &str, iteration: usize, seq: &[f64], par: &[f64]) {
    assert_eq!(seq.len(), par.len(), "{label} length at iteration {iteration}");
    for (i, (s, p)) in seq.iter().zip(par).enumerate() {
        assert!(
            s.to_bits() == p.to_bits(),
            "{label}[{i}] diverged at iteration {iteration}: reference {s:?} ({:#x}) vs \
             candidate {p:?} ({:#x})",
            s.to_bits(),
            p.to_bits(),
        );
    }
}

/// Runs both engines `iterations` steps over `problem`, checking full-state
/// bit-identity after every step.
fn assert_engines_identical(
    problem: Problem,
    config: LrgpConfig,
    parallelism: Parallelism,
    iterations: usize,
) {
    let sequential_config =
        LrgpConfig { parallelism: Parallelism::Sequential, trace: TraceConfig::full(), ..config };
    let parallel_config = LrgpConfig { parallelism, trace: TraceConfig::full(), ..config };
    let mut sequential = Engine::new(problem.clone(), sequential_config);
    let mut parallel = Engine::new(problem, parallel_config);
    // Dispatch through the worker pool even on single-CPU hosts, so the
    // cross-thread handoff is exercised wherever the suite runs.
    parallel.force_pool_dispatch(true);
    for k in 1..=iterations {
        let u_seq = sequential.step();
        let u_par = parallel.step();
        assert!(
            u_seq.to_bits() == u_par.to_bits(),
            "utility diverged at iteration {k}: {u_seq:?} vs {u_par:?}"
        );
        assert_same_state("parallel", k, &sequential, &parallel);
    }
    // The recorded traces, being per-iteration snapshots of the state
    // checked above, must agree wholesale.
    assert_bits_eq(
        "utility trace",
        iterations,
        sequential.trace().utility.values(),
        parallel.trace().utility.values(),
    );
}

/// Compares the full optimizer state of `candidate` against `reference`
/// with bitwise equality after iteration `k`.
fn assert_same_state(label: &str, k: usize, reference: &Engine, candidate: &Engine) {
    let a_ref = reference.allocation();
    let a_can = candidate.allocation();
    assert_bits_eq(&format!("{label} rates"), k, a_ref.rates(), a_can.rates());
    assert_bits_eq(&format!("{label} populations"), k, a_ref.populations(), a_can.populations());
    assert_bits_eq(
        &format!("{label} node_prices"),
        k,
        reference.prices().node_prices(),
        candidate.prices().node_prices(),
    );
    assert_bits_eq(
        &format!("{label} link_prices"),
        k,
        reference.prices().link_prices(),
        candidate.prices().link_prices(),
    );
    let gammas_ref: Vec<f64> =
        reference.problem().node_ids().map(|n| reference.node_gamma(n)).collect();
    let gammas_can: Vec<f64> =
        candidate.problem().node_ids().map(|n| candidate.node_gamma(n)).collect();
    assert_bits_eq(&format!("{label} gammas"), k, &gammas_ref, &gammas_can);
}

/// Runs the baseline full-recompute engine against two incremental engines
/// (sequential and sharded with the given parallelism) in lockstep,
/// asserting full-state bit-identity after every iteration. If `removal` is
/// `Some((k, flow))`, the flow is removed from all three engines right
/// before iteration `k` — the baseline through the wholesale
/// `replace_problem` oracle, the incremental engines through
/// [`Engine::apply_delta`], which must invalidate their dirty sets and stay
/// identical afterwards.
fn assert_incremental_identical(
    problem: Problem,
    config: LrgpConfig,
    parallelism: Parallelism,
    iterations: usize,
    removal: Option<(usize, u32)>,
) {
    let baseline_config = LrgpConfig {
        parallelism: Parallelism::Sequential,
        incremental: IncrementalMode::Off,
        trace: TraceConfig::full(),
        ..config
    };
    let inc_seq_config = LrgpConfig { incremental: IncrementalMode::On, ..baseline_config };
    let inc_par_config = LrgpConfig { parallelism, ..inc_seq_config };
    let mut baseline = Engine::new(problem.clone(), baseline_config);
    let mut inc_seq = Engine::new(problem.clone(), inc_seq_config);
    let mut inc_par = Engine::new(problem, inc_par_config);
    inc_par.force_pool_dispatch(true);
    for k in 1..=iterations {
        if let Some((at, flow)) = removal {
            if k == at {
                let delta = ProblemDelta::new().remove_flow(FlowId::new(flow));
                baseline.replace_problem(delta.apply(baseline.problem()).expect("flow exists"));
                inc_seq.apply_delta(&delta).expect("flow exists");
                inc_par.apply_delta(&delta).expect("flow exists");
            }
        }
        let u_base = baseline.step();
        let u_seq = inc_seq.step();
        let u_par = inc_par.step();
        assert!(
            u_base.to_bits() == u_seq.to_bits(),
            "incremental-sequential utility diverged at iteration {k}: {u_base:?} vs {u_seq:?}"
        );
        assert!(
            u_base.to_bits() == u_par.to_bits(),
            "incremental-threads utility diverged at iteration {k}: {u_base:?} vs {u_par:?}"
        );
        assert_same_state("incremental-sequential", k, &baseline, &inc_seq);
        assert_same_state("incremental-threads", k, &baseline, &inc_par);
    }
    assert_bits_eq(
        "incremental-sequential utility trace",
        iterations,
        baseline.trace().utility.values(),
        inc_seq.trace().utility.values(),
    );
    assert_bits_eq(
        "incremental-threads utility trace",
        iterations,
        baseline.trace().utility.values(),
        inc_par.trace().utility.values(),
    );
}

fn workload_strategy() -> impl Strategy<Value = (RandomWorkload, u64, usize)> {
    (
        2usize..24,   // flows
        1usize..8,    // consumer nodes
        1usize..5,    // classes per flow
        prop_oneof![
            Just(UtilityShape::Log),
            Just(UtilityShape::Pow25),
            Just(UtilityShape::Pow50),
            Just(UtilityShape::Pow75),
        ],
        0u64..1_000_000, // workload seed
        2usize..8,    // worker threads
    )
        .prop_map(|(flows, cnodes, classes, shape, seed, threads)| {
            let workload = RandomWorkload {
                flows,
                consumer_nodes: cnodes,
                classes_per_flow: classes,
                shape,
                ..RandomWorkload::default()
            };
            (workload, seed, threads)
        })
}

/// A seed-chosen targeted delta: `(kind, element selector, magnitude)`
/// resolved against the problem's current dimensions at application time.
fn resolve_delta(problem: &Problem, kind: u8, sel: u64, magnitude: f64) -> ProblemDelta {
    match kind {
        0 => {
            let node = NodeId::new((sel % problem.num_nodes() as u64) as u32);
            ProblemDelta::new().set_node_capacity(node, 10_000.0 + magnitude)
        }
        1 => {
            let class = ClassId::new((sel % problem.num_classes() as u64) as u32);
            ProblemDelta::new().resize_class(class, (magnitude as u32) % 400)
        }
        2 => {
            let flow = FlowId::new((sel % problem.num_flows() as u64) as u32);
            let max = 50.0 + magnitude % 900.0;
            let bounds = RateBounds::new(5.0, max).expect("5 < 50 ≤ max");
            ProblemDelta::new().set_rate_bounds(flow, bounds)
        }
        _ => {
            let flow = FlowId::new((sel % problem.num_flows() as u64) as u32);
            ProblemDelta::new().remove_flow(flow)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The acceptance criterion: ≥ 100 randomized problems, bit-identical
    /// rates, admissions, prices, and utility traces at every iteration.
    #[test]
    fn parallel_engine_bit_identical_on_random_problems(
        (workload, seed, threads) in workload_strategy()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        assert_engines_identical(
            problem,
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            25,
        );
    }

    /// The incremental acceptance criterion: on the same randomized problem
    /// population, the dirty-set engine (sequential and threaded) is
    /// bit-identical to the full-recompute baseline at every iteration —
    /// including across a mid-run flow removal, which must invalidate the
    /// term tables and dirty sets.
    #[test]
    fn incremental_engine_bit_identical_on_random_problems(
        (workload, seed, threads) in workload_strategy()
    ) {
        let flows = workload.flows;
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        // Remove a seed-chosen flow before iteration 16 of 25, so every case
        // exercises both steady-state skipping and invalidation.
        let removal = Some((16, (seed % flows as u64) as u32));
        assert_incremental_identical(
            problem,
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            25,
            removal,
        );
    }

    /// The delta-sequence oracle: a random schedule of targeted edits and
    /// removals applied mid-run through [`Engine::apply_delta`] (which
    /// keeps the dirty-set caches alive where it can) must leave the
    /// incremental engines bit-identical, at every iteration, to the
    /// full-recompute baseline that rebuilds its problem wholesale with
    /// `replace_problem(delta.apply(..))`. The pooled candidates run the
    /// same schedule at 2, 3, and 4 contexts with dispatch forced, covering
    /// non-divisible shard splits and dirty sets smaller than the worker
    /// count (the workload floor is 2 flows / 1 node).
    ///
    /// The numerics axis rides the same schedule as a third oracle column:
    /// the explicitly-`Strict` engine must stay `to_bits`-identical to the
    /// baseline (column two re-asserted under the new axis), and the
    /// `Vectorized` engine must track the baseline's total utility within
    /// `1e-9` relative while converging and within `1e-12` relative after
    /// the post-schedule settle — the convergence drift gate.
    #[test]
    fn delta_sequences_bit_identical_to_from_scratch(
        (workload, seed, _threads) in workload_strategy(),
        schedule in proptest::collection::vec(
            (0u8..4, 0u64..1_000_000, 0.0f64..1_000_000.0),
            1..5,
        )
    ) {
        const POOLED_WORKERS: [usize; 3] = [2, 3, 4];
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        let baseline_config = LrgpConfig {
            parallelism: Parallelism::Sequential,
            incremental: IncrementalMode::Off,
            trace: TraceConfig::full(),
            numerics: Numerics::Strict,
            // Explicitly rate-only: this schedule pins the pre-reliability
            // engine behavior that `Reliability::Off` must reproduce.
            reliability: Reliability::Off,
            ..LrgpConfig::default()
        };
        let inc_seq_config =
            LrgpConfig { incremental: IncrementalMode::On, ..baseline_config };
        let vectorized_config =
            LrgpConfig { numerics: Numerics::Vectorized, ..baseline_config };
        let mut baseline = Engine::new(problem.clone(), baseline_config);
        let mut inc_seq = Engine::new(problem.clone(), inc_seq_config);
        let mut vectorized = Engine::new(problem.clone(), vectorized_config);
        let mut pooled: Vec<Engine> = POOLED_WORKERS
            .iter()
            .map(|&w| {
                let config =
                    LrgpConfig { parallelism: Parallelism::Threads(w), ..inc_seq_config };
                let engine = Engine::new(problem.clone(), config);
                engine.force_pool_dispatch(true);
                engine
            })
            .collect();
        // One delta every 6 iterations, starting at iteration 7 so the
        // first edits land on a warm dirty-set state.
        for k in 1..=30usize {
            if k >= 7 && (k - 7) % 6 == 0 {
                if let Some(&(kind, sel, magnitude)) = schedule.get((k - 7) / 6) {
                    let delta = resolve_delta(baseline.problem(), kind, sel, magnitude);
                    let edited = delta.apply(baseline.problem()).expect("delta is valid");
                    baseline.replace_problem(edited);
                    inc_seq.apply_delta(&delta).expect("delta is valid");
                    vectorized.apply_delta(&delta).expect("delta is valid");
                    for engine in &mut pooled {
                        engine.apply_delta(&delta).expect("delta is valid");
                    }
                }
            }
            let u_base = baseline.step();
            let u_seq = inc_seq.step();
            prop_assert!(
                u_base.to_bits() == u_seq.to_bits(),
                "delta-sequential utility diverged at iteration {}: {:?} vs {:?}",
                k, u_base, u_seq
            );
            assert_same_state("delta-sequential", k, &baseline, &inc_seq);
            let u_vec = vectorized.step();
            prop_assert!(
                (u_vec - u_base).abs() <= 1e-9 * u_base.abs().max(1.0),
                "vectorized utility drifted past the transient bound at iteration {}: \
                 strict {:?} vs vectorized {:?}",
                k, u_base, u_vec
            );
            for (engine, w) in pooled.iter_mut().zip(POOLED_WORKERS) {
                let u_par = engine.step();
                prop_assert!(
                    u_base.to_bits() == u_par.to_bits(),
                    "delta-threads({}) utility diverged at iteration {}: {:?} vs {:?}",
                    w, k, u_base, u_par
                );
            }
            for (engine, w) in pooled.iter().zip(POOLED_WORKERS) {
                assert_same_state(&format!("delta-threads-{w}"), k, &baseline, engine);
            }
        }
        // The convergence gate: settle both numerics columns well past the
        // last delta, then hold the vectorized engine to the tight bound.
        let mut u_base = 0.0;
        let mut u_vec = 0.0;
        for _ in 0..120 {
            u_base = baseline.step();
            u_vec = vectorized.step();
        }
        prop_assert!(
            (u_vec - u_base).abs() <= 1e-12 * u_base.abs().max(1.0),
            "vectorized utility drifted past 1e-12 relative at convergence: \
             strict {:?} vs vectorized {:?}",
            u_base, u_vec
        );
    }
}

/// A seed-chosen delta that may also touch the reliability spec: kinds
/// 0–3 are [`resolve_delta`]'s rate-side edits, kind 4 replaces a link's
/// loss rate, kind 5 replaces a flow's ρ bounds. Only valid on problems
/// that carry a [`lrgp_model::ReliabilitySpec`].
fn resolve_lossy_delta(problem: &Problem, kind: u8, sel: u64, magnitude: f64) -> ProblemDelta {
    match kind {
        0..=3 => resolve_delta(problem, kind, sel, magnitude),
        4 => {
            let link = LinkId::new((sel % problem.num_links() as u64) as u32);
            let loss = (magnitude / 1_000_000.0) * 0.45;
            ProblemDelta::new().set_link_loss(link, loss)
        }
        _ => {
            let flow = FlowId::new((sel % problem.num_flows() as u64) as u32);
            let min = 0.2 + (magnitude / 1_000_000.0) * 0.5;
            let bounds = RhoBounds::new(min, 0.95).expect("0 < min ≤ 0.7 < 0.95 ≤ 1");
            ProblemDelta::new().set_rho_bounds(flow, bounds)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The reliability-off oracle: on a spec-carrying lossy workload, a
    /// `Reliability::Off` engine (sequential and pooled) must be
    /// bit-identical, at every iteration, to an engine running the
    /// spec-stripped problem — which is the pre-reliability engine by
    /// construction, since stripping the spec removes every reliability
    /// code path. Loss and ρ-bound deltas land on the spec-carrying
    /// engines only (they cannot even be expressed on the stripped
    /// problem) and must not perturb a single bit; rate-side deltas land
    /// on both sides. (ρ *state* may be re-clamped by a ρ-bound delta —
    /// state clamping mirrors the rate path — but under `Off` it feeds
    /// nothing, which the bitwise identity proves.)
    #[test]
    fn reliability_off_bit_identical_to_spec_stripped_engine(
        (pairs, seed, threads) in (1usize..5, 0u64..1_000_000, 2usize..5),
        schedule in proptest::collection::vec(
            (0u8..6, 0u64..1_000_000, 0.0f64..1_000_000.0),
            1..5,
        )
    ) {
        let problem = mixed_loss_workload(pairs, 400.0, seed);
        let stripped_config = LrgpConfig {
            link_gamma: 2e-3,
            trace: TraceConfig::full(),
            ..LrgpConfig::default()
        };
        let off_config = LrgpConfig { reliability: Reliability::Off, ..stripped_config };
        let off_par_config =
            LrgpConfig { parallelism: Parallelism::Threads(threads), ..off_config };
        let mut stripped = Engine::new(problem.without_reliability(), stripped_config);
        let mut off_seq = Engine::new(problem.clone(), off_config);
        let mut off_par = Engine::new(problem.clone(), off_par_config);
        off_par.force_pool_dispatch(true);
        for k in 1..=30usize {
            if k >= 7 && (k - 7) % 6 == 0 {
                if let Some(&(kind, sel, magnitude)) = schedule.get((k - 7) / 6) {
                    let delta = resolve_lossy_delta(off_seq.problem(), kind, sel, magnitude);
                    off_seq.apply_delta(&delta).expect("delta is valid on the spec side");
                    off_par.apply_delta(&delta).expect("delta is valid on the spec side");
                    if kind <= 3 {
                        // Rate-side edits exist on the stripped problem too.
                        stripped.apply_delta(&delta).expect("delta is valid");
                    }
                }
            }
            let u_ref = stripped.step();
            let u_seq = off_seq.step();
            let u_par = off_par.step();
            prop_assert!(
                u_ref.to_bits() == u_seq.to_bits(),
                "off-sequential utility diverged at iteration {}: {:?} vs {:?}",
                k, u_ref, u_seq
            );
            prop_assert!(
                u_ref.to_bits() == u_par.to_bits(),
                "off-threads utility diverged at iteration {}: {:?} vs {:?}",
                k, u_ref, u_par
            );
            assert_same_state("off-sequential", k, &stripped, &off_seq);
            assert_same_state("off-threads", k, &stripped, &off_par);
        }
    }

    /// The joint-plan oracle: `Reliability::Joint` engines must be
    /// bit-identical — rates, populations, prices, γ, *and* ρ — across
    /// the plan matrix (sequential full recompute vs incremental
    /// sequential vs incremental pooled), through a schedule of rate-side
    /// and reliability-side deltas applied via [`Engine::apply_delta`]
    /// against the wholesale `replace_problem` baseline.
    #[test]
    fn joint_reliability_bit_identical_across_plans(
        (pairs, seed, threads) in (1usize..5, 0u64..1_000_000, 2usize..5),
        schedule in proptest::collection::vec(
            (0u8..6, 0u64..1_000_000, 0.0f64..1_000_000.0),
            1..5,
        )
    ) {
        let problem = mixed_loss_workload(pairs, 400.0, seed);
        let baseline_config = LrgpConfig {
            parallelism: Parallelism::Sequential,
            incremental: IncrementalMode::Off,
            reliability: Reliability::Joint,
            link_gamma: 2e-3,
            trace: TraceConfig::full(),
            ..LrgpConfig::default()
        };
        let inc_seq_config = LrgpConfig { incremental: IncrementalMode::On, ..baseline_config };
        let inc_par_config =
            LrgpConfig { parallelism: Parallelism::Threads(threads), ..inc_seq_config };
        let mut baseline = Engine::new(problem.clone(), baseline_config);
        let mut inc_seq = Engine::new(problem.clone(), inc_seq_config);
        let mut inc_par = Engine::new(problem, inc_par_config);
        inc_par.force_pool_dispatch(true);
        for k in 1..=30usize {
            if k >= 7 && (k - 7) % 6 == 0 {
                if let Some(&(kind, sel, magnitude)) = schedule.get((k - 7) / 6) {
                    let delta = resolve_lossy_delta(baseline.problem(), kind, sel, magnitude);
                    let edited = delta.apply(baseline.problem()).expect("delta is valid");
                    baseline.replace_problem(edited);
                    inc_seq.apply_delta(&delta).expect("delta is valid");
                    inc_par.apply_delta(&delta).expect("delta is valid");
                }
            }
            let u_base = baseline.step();
            let u_seq = inc_seq.step();
            let u_par = inc_par.step();
            prop_assert!(
                u_base.to_bits() == u_seq.to_bits(),
                "joint-sequential utility diverged at iteration {}: {:?} vs {:?}",
                k, u_base, u_seq
            );
            prop_assert!(
                u_base.to_bits() == u_par.to_bits(),
                "joint-threads utility diverged at iteration {}: {:?} vs {:?}",
                k, u_base, u_par
            );
            assert_same_state("joint-sequential", k, &baseline, &inc_seq);
            assert_same_state("joint-threads", k, &baseline, &inc_par);
            assert_bits_eq("joint-sequential rhos", k, baseline.rhos(), inc_seq.rhos());
            assert_bits_eq("joint-threads rhos", k, baseline.rhos(), inc_par.rhos());
        }
    }
}

/// [`mixed_loss_workload`]'s topology with the paper's power utilities,
/// which make the joint engine actually trade ρ away on lossy links. (With
/// log rate utilities the reliability mass equals the rate mass and the
/// marginal reliability value `1/ρ` always beats the induced capacity
/// cost, so ρ provably pins at its ceiling.)
fn pow_lossy_pairs(pairs: usize, link_capacity: f64) -> Problem {
    let mut b = lrgp_model::ProblemBuilder::new();
    let bounds = RateBounds::new(1.0, 10_000.0).expect("literal bounds valid");
    let mut link_loss = Vec::with_capacity(pairs);
    let mut rho_bounds = Vec::with_capacity(2 * pairs);
    for k in 0..pairs {
        let src0 = b.add_labeled_node(1e9, format!("pair{k}/src0"));
        let src1 = b.add_labeled_node(1e9, format!("pair{k}/src1"));
        let sink = b.add_labeled_node(1e9, format!("pair{k}/sink"));
        let link = b.add_link_between(link_capacity, src0, sink);
        let f0 = b.add_flow(src0, bounds);
        let f1 = b.add_flow(src1, bounds);
        for (i, f) in [f0, f1].into_iter().enumerate() {
            b.set_link_cost(f, link, 1.0);
            b.set_node_cost(f, sink, 0.001);
            let rank = 10.0 + 7.0 * (2 * k + i) as f64;
            b.add_class(f, sink, 10, UtilityShape::Pow75.build(rank), 0.001);
            rho_bounds.push(lrgp_model::workloads::GENERATOR_RHO_BOUNDS);
        }
        link_loss.push(0.05 * (k % 6) as f64);
    }
    b.set_reliability(lrgp_model::ReliabilitySpec { rho_bounds, link_loss, redundancy: 1.0 });
    b.build().expect("pow lossy workload is structurally valid")
}

#[test]
fn joint_vectorized_drift_bounded_at_convergence() {
    // The vectorized joint step reassociates both the ρ price gathers and
    // the redundancy-coupled link-usage sums; like the rate-only numerics
    // axis it is held to the 1e-12 relative drift gate at convergence
    // rather than bitwise identity.
    let problem = pow_lossy_pairs(6, 100.0);
    let strict_config = LrgpConfig {
        reliability: Reliability::Joint,
        numerics: Numerics::Strict,
        link_gamma: 2e-3,
        ..LrgpConfig::default()
    };
    let vectorized_config = LrgpConfig { numerics: Numerics::Vectorized, ..strict_config };
    let mut strict = Engine::new(problem.clone(), strict_config);
    let mut vectorized = Engine::new(problem, vectorized_config);
    let mut u_strict = 0.0;
    let mut u_vectorized = 0.0;
    for _ in 0..400 {
        u_strict = strict.step();
        u_vectorized = vectorized.step();
    }
    let drift = (u_vectorized - u_strict).abs() / u_strict.abs().max(1.0);
    assert!(
        drift <= 1e-12,
        "joint vectorized relative drift {drift:e} exceeds 1e-12 at convergence: \
         strict {u_strict:?} vs vectorized {u_vectorized:?}"
    );
    // ρ must actually have moved off its ceiling somewhere, or this test
    // exercised nothing.
    assert!(
        strict.rhos().iter().any(|&rho| rho < 0.999),
        "joint engine never traded reliability away on a lossy workload"
    );
}

#[test]
fn parallel_engine_bit_identical_on_paper_workload() {
    // The Table 1 workload, long enough to pass through the initial
    // oscillation and the adaptive-γ regime changes.
    for threads in [2, 3, 4, 7] {
        assert_engines_identical(
            paper_workload(UtilityShape::Log, 1, 1),
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            120,
        );
    }
}

#[test]
fn parallel_engine_bit_identical_with_link_prices() {
    // RandomWorkload has no links; this workload makes the link-price phase
    // (Eq. 13) the binding constraint so its sharded path is exercised.
    assert_engines_identical(
        link_bottleneck_workload(500.0),
        LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() },
        Parallelism::Threads(2),
        200,
    );
}

#[test]
fn parallel_engine_bit_identical_under_auto() {
    // Auto may resolve to any worker count (including 1); identity must
    // hold regardless.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = RandomWorkload { flows: 64, consumer_nodes: 16, ..RandomWorkload::default() };
    let problem = workload.generate(&mut rng);
    assert_engines_identical(problem, LrgpConfig::default(), Parallelism::Auto, 40);
}

#[test]
fn parallel_engine_bit_identical_with_more_workers_than_elements() {
    // Degenerate sharding: more threads than flows/nodes must not change
    // results (each chunk holds at most one element).
    let mut rng = StdRng::seed_from_u64(11);
    let workload = RandomWorkload { flows: 3, consumer_nodes: 2, ..RandomWorkload::default() };
    let problem = workload.generate(&mut rng);
    assert_engines_identical(problem, LrgpConfig::default(), Parallelism::Threads(32), 30);
}

#[test]
fn parallel_engine_matches_through_flow_removal() {
    // Dynamics (Fig. 3): removing a flow mid-run must keep the engines in
    // lockstep afterwards too.
    let problem = paper_workload(UtilityShape::Log, 1, 1);
    let config = LrgpConfig { trace: TraceConfig::full(), ..LrgpConfig::default() };
    let threads_config = LrgpConfig { parallelism: Parallelism::Threads(4), ..config };
    let mut sequential = Engine::new(problem.clone(), config);
    let mut parallel = Engine::new(problem, threads_config);
    sequential.run(50);
    parallel.run(50);
    let delta = ProblemDelta::new().remove_flow(FlowId::new(5));
    sequential.apply_delta(&delta).unwrap();
    parallel.apply_delta(&delta).unwrap();
    for k in 1..=50 {
        let u_seq = sequential.step();
        let u_par = parallel.step();
        assert!(
            u_seq.to_bits() == u_par.to_bits(),
            "utility diverged at post-removal iteration {k}: {u_seq:?} vs {u_par:?}"
        );
    }
}

#[test]
fn vectorized_drift_bounded_at_convergence_on_wide_mixed_workload() {
    // The randomized schedule above keeps every flow in one utility shape
    // with sub-lane-width term lists, where the vectorized engine happens
    // to reproduce the strict sums exactly. This workload denies it that:
    // 12 mixed-shape classes per flow push every flow into the Generic
    // cohort (grouped-derivative bisection) and make the gather dot
    // products wider than one lane chunk, so the sums genuinely
    // reassociate. The drift gate must still hold at convergence.
    let workload = RandomWorkload {
        flows: 96,
        consumer_nodes: 12,
        classes_per_flow: 12,
        mixed_shapes: true,
        ..RandomWorkload::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let problem = workload.generate(&mut rng);
    let strict_config = LrgpConfig { numerics: Numerics::Strict, ..LrgpConfig::default() };
    let vectorized_config =
        LrgpConfig { numerics: Numerics::Vectorized, ..LrgpConfig::default() };
    let mut strict = Engine::new(problem.clone(), strict_config);
    let mut vectorized = Engine::new(problem, vectorized_config);
    let mut u_strict = 0.0;
    let mut u_vectorized = 0.0;
    for _ in 0..400 {
        u_strict = strict.step();
        u_vectorized = vectorized.step();
    }
    let drift = (u_vectorized - u_strict).abs() / u_strict.abs().max(1.0);
    assert!(
        drift <= 1e-12,
        "vectorized relative drift {drift:e} exceeds 1e-12 at convergence: \
         strict {u_strict:?} vs vectorized {u_vectorized:?}"
    );
}

#[test]
fn incremental_engine_bit_identical_on_paper_workload() {
    // Long enough to pass through the initial oscillation, the adaptive-γ
    // regime changes, and into the steady state where the dirty sets have
    // shrunk to the churning core — the regime the skipping logic exists
    // for.
    for threads in [2, 4] {
        assert_incremental_identical(
            paper_workload(UtilityShape::Log, 1, 1),
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            300,
            None,
        );
    }
}

#[test]
fn incremental_engine_bit_identical_with_link_prices() {
    // RandomWorkload has no links; this workload drives the dirty-link
    // usage recomputation and the Eq. 13 change detection.
    assert_incremental_identical(
        link_bottleneck_workload(500.0),
        LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() },
        Parallelism::Threads(2),
        200,
        Some((120, 0)),
    );
}

#[test]
fn incremental_engine_bit_identical_under_auto() {
    let mut rng = StdRng::seed_from_u64(7);
    let workload = RandomWorkload { flows: 64, consumer_nodes: 16, ..RandomWorkload::default() };
    let problem = workload.generate(&mut rng);
    assert_incremental_identical(problem, LrgpConfig::default(), Parallelism::Auto, 40, None);
}

#[test]
fn incremental_engine_matches_through_capacity_and_population_churn() {
    // Dynamics beyond flow removal: capacity and max-population edits reach
    // the candidate through `apply_delta` (via `ProblemChange::to_delta_op`,
    // the same route `run_scenario` takes), which keeps the dirty-set
    // caches alive; the baseline rebuilds wholesale through
    // `replace_problem`. Both must stay in bitwise lockstep.
    let problem = paper_workload(UtilityShape::Log, 1, 1);
    let config = LrgpConfig { trace: TraceConfig::full(), ..LrgpConfig::default() };
    let inc_config = LrgpConfig { incremental: IncrementalMode::On, ..config };
    let mut baseline = Engine::new(problem.clone(), config);
    let mut incremental = Engine::new(problem, inc_config);
    let node = baseline.problem().node_ids().next().expect("workload has nodes");
    let class = baseline.problem().class_ids().next().expect("workload has classes");
    let changes: [(usize, ProblemChange); 3] = [
        (40, ProblemChange::SetNodeCapacity { node, capacity: 30_000.0 }),
        (80, ProblemChange::SetMaxPopulation { class, max_population: 10 }),
        (120, ProblemChange::SetNodeCapacity { node, capacity: 57_000.0 }),
    ];
    for k in 1..=160 {
        for (at, change) in &changes {
            if k == *at {
                let edited = change.apply(baseline.problem()).expect("change is valid");
                baseline.replace_problem(edited);
                let mut delta = ProblemDelta::new();
                delta.push(change.to_delta_op());
                incremental.apply_delta(&delta).expect("change is valid");
            }
        }
        let u_base = baseline.step();
        let u_inc = incremental.step();
        assert!(
            u_base.to_bits() == u_inc.to_bits(),
            "utility diverged at churn iteration {k}: {u_base:?} vs {u_inc:?}"
        );
        assert_same_state("churn", k, &baseline, &incremental);
    }
}

#[test]
fn adding_a_flow_mid_run_stays_bit_identical() {
    // The growing delta: `AddFlow` resizes every engine-side vector.
    // (`replace_problem` rejects dimension changes, so growth has no
    // wholesale oracle; the check here is that all three execution plans
    // re-derive against the grown problem in bitwise lockstep.)
    let problem = paper_workload(UtilityShape::Log, 1, 1);
    let source = problem.flow(FlowId::new(0)).source;
    let consumer = problem.class(ClassId::new(0)).node;
    let grow = ProblemDelta::new().add_flow(
        FlowSpec {
            source,
            bounds: RateBounds::new(10.0, 1000.0).unwrap(),
            link_costs: vec![],
            node_costs: vec![(source, 1.0), (consumer, 2.0)],
        },
        vec![ClassSpec {
            flow: FlowId::new(0), // overwritten with the appended flow's id
            node: consumer,
            max_population: 150,
            utility: Utility::log(40.0),
            consumer_cost: 3.0,
        }],
    );
    let baseline_config = LrgpConfig {
        parallelism: Parallelism::Sequential,
        incremental: IncrementalMode::Off,
        trace: TraceConfig::full(),
        ..LrgpConfig::default()
    };
    let inc_config = LrgpConfig { incremental: IncrementalMode::On, ..baseline_config };
    let par_config =
        LrgpConfig { parallelism: Parallelism::Threads(3), ..baseline_config };
    let mut baseline = Engine::new(problem.clone(), baseline_config);
    let mut incremental = Engine::new(problem.clone(), inc_config);
    let mut parallel = Engine::new(problem, par_config);
    baseline.run(60);
    incremental.run(60);
    parallel.run(60);
    baseline.apply_delta(&grow).expect("delta is valid");
    incremental.apply_delta(&grow).expect("delta is valid");
    parallel.apply_delta(&grow).expect("delta is valid");
    for k in 1..=80 {
        let u_base = baseline.step();
        let u_inc = incremental.step();
        let u_par = parallel.step();
        assert!(
            u_base.to_bits() == u_inc.to_bits(),
            "post-growth incremental utility diverged at iteration {k}: {u_base:?} vs {u_inc:?}"
        );
        assert!(
            u_base.to_bits() == u_par.to_bits(),
            "post-growth threads utility diverged at iteration {k}: {u_base:?} vs {u_par:?}"
        );
        assert_same_state("post-growth incremental", k, &baseline, &incremental);
        assert_same_state("post-growth threads", k, &baseline, &parallel);
    }
    let new_flow = FlowId::new(baseline.problem().num_flows() as u32 - 1);
    assert!(baseline.allocation().rate(new_flow) > 0.0, "appended flow never got a rate");
}

#[test]
fn delta_ops_list_matches_scenario_change_kinds() {
    // `DeltaOp` must stay expressive enough for every scenario change kind;
    // a new `ProblemChange` variant without a delta mapping would silently
    // fall back to wholesale rebuilds in `run_scenario`.
    let p = paper_workload(UtilityShape::Log, 1, 1);
    let node = p.node_ids().next().unwrap();
    let class = p.class_ids().next().unwrap();
    let changes = [
        ProblemChange::RemoveFlow(FlowId::new(0)),
        ProblemChange::SetNodeCapacity { node, capacity: 1e5 },
        ProblemChange::SetMaxPopulation { class, max_population: 5 },
        ProblemChange::SetRateBounds {
            flow: FlowId::new(1),
            bounds: RateBounds::new(1.0, 10.0).unwrap(),
        },
    ];
    for change in changes {
        let mut delta = ProblemDelta::new();
        delta.push(change.to_delta_op());
        let via_delta = delta.apply(&p).unwrap();
        let via_change = change.apply(&p).unwrap();
        assert_eq!(via_delta, via_change, "{change:?}");
    }
}
