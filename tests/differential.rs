//! Differential-testing harness: the sharded parallel engine must be
//! **bit-identical** to the sequential reference engine.
//!
//! Both engines run step-by-step over randomized problems; after every
//! single iteration the harness compares rates, populations (admissions),
//! node prices, link prices, γ values, and the total-utility trace with
//! `f64::to_bits` equality — no tolerances anywhere. Any reassociated sum,
//! racy write, or out-of-order reduction in the parallel path shows up as a
//! hard failure with the iteration and element index.

use lrgp::{
    IncrementalMode, LrgpConfig, LrgpEngine, ParallelLrgpEngine, Parallelism, ProblemChange,
    TraceConfig,
};
use lrgp_model::workloads::{link_bottleneck_workload, paper_workload, RandomWorkload};
use lrgp_model::{FlowId, Problem, UtilityShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts two f64 slices are bit-for-bit equal.
fn assert_bits_eq(label: &str, iteration: usize, seq: &[f64], par: &[f64]) {
    assert_eq!(seq.len(), par.len(), "{label} length at iteration {iteration}");
    for (i, (s, p)) in seq.iter().zip(par).enumerate() {
        assert!(
            s.to_bits() == p.to_bits(),
            "{label}[{i}] diverged at iteration {iteration}: sequential {s:?} ({:#x}) vs \
             parallel {p:?} ({:#x})",
            s.to_bits(),
            p.to_bits(),
        );
    }
}

/// Runs both engines `iterations` steps over `problem`, checking full-state
/// bit-identity after every step.
fn assert_engines_identical(
    problem: Problem,
    config: LrgpConfig,
    parallelism: Parallelism,
    iterations: usize,
) {
    let sequential_config =
        LrgpConfig { parallelism: Parallelism::Sequential, trace: TraceConfig::full(), ..config };
    let parallel_config =
        LrgpConfig { parallelism, trace: TraceConfig::full(), ..config };
    let mut sequential = LrgpEngine::new(problem.clone(), sequential_config);
    let mut parallel = ParallelLrgpEngine::new(problem, parallel_config);
    for k in 1..=iterations {
        let u_seq = sequential.step();
        let u_par = parallel.step();
        assert!(
            u_seq.to_bits() == u_par.to_bits(),
            "utility diverged at iteration {k}: {u_seq:?} vs {u_par:?}"
        );
        let a_seq = sequential.allocation();
        let a_par = parallel.allocation();
        assert_bits_eq("rates", k, a_seq.rates(), a_par.rates());
        assert_bits_eq("populations", k, a_seq.populations(), a_par.populations());
        assert_bits_eq(
            "node_prices",
            k,
            sequential.prices().node_prices(),
            parallel.prices().node_prices(),
        );
        assert_bits_eq(
            "link_prices",
            k,
            sequential.prices().link_prices(),
            parallel.prices().link_prices(),
        );
        let gammas_seq: Vec<f64> =
            sequential.problem().node_ids().map(|n| sequential.node_gamma(n)).collect();
        let gammas_par: Vec<f64> =
            parallel.problem().node_ids().map(|n| parallel.engine().node_gamma(n)).collect();
        assert_bits_eq("gammas", k, &gammas_seq, &gammas_par);
    }
    // The recorded traces, being per-iteration snapshots of the state
    // checked above, must agree wholesale.
    assert_bits_eq(
        "utility trace",
        iterations,
        sequential.trace().utility.values(),
        parallel.trace().utility.values(),
    );
}

/// Compares the full optimizer state of `candidate` against `reference`
/// with bitwise equality after iteration `k`.
fn assert_same_state(label: &str, k: usize, reference: &LrgpEngine, candidate: &LrgpEngine) {
    let a_ref = reference.allocation();
    let a_can = candidate.allocation();
    assert_bits_eq(&format!("{label} rates"), k, a_ref.rates(), a_can.rates());
    assert_bits_eq(&format!("{label} populations"), k, a_ref.populations(), a_can.populations());
    assert_bits_eq(
        &format!("{label} node_prices"),
        k,
        reference.prices().node_prices(),
        candidate.prices().node_prices(),
    );
    assert_bits_eq(
        &format!("{label} link_prices"),
        k,
        reference.prices().link_prices(),
        candidate.prices().link_prices(),
    );
    let gammas_ref: Vec<f64> =
        reference.problem().node_ids().map(|n| reference.node_gamma(n)).collect();
    let gammas_can: Vec<f64> =
        candidate.problem().node_ids().map(|n| candidate.node_gamma(n)).collect();
    assert_bits_eq(&format!("{label} gammas"), k, &gammas_ref, &gammas_can);
}

/// Runs the baseline full-recompute engine against two incremental engines
/// (sequential and sharded with the given parallelism) in lockstep,
/// asserting full-state bit-identity after every iteration. If `removal` is
/// `Some((k, flow))`, the flow is removed from all three engines right
/// before iteration `k` — the incremental engines must invalidate their
/// dirty sets and stay identical afterwards.
fn assert_incremental_identical(
    problem: Problem,
    config: LrgpConfig,
    parallelism: Parallelism,
    iterations: usize,
    removal: Option<(usize, u32)>,
) {
    let baseline_config = LrgpConfig {
        parallelism: Parallelism::Sequential,
        incremental: IncrementalMode::Off,
        trace: TraceConfig::full(),
        ..config
    };
    let inc_seq_config = LrgpConfig { incremental: IncrementalMode::On, ..baseline_config };
    let inc_par_config = LrgpConfig { parallelism, ..inc_seq_config };
    let mut baseline = LrgpEngine::new(problem.clone(), baseline_config);
    let mut inc_seq = LrgpEngine::new(problem.clone(), inc_seq_config);
    let mut inc_par = LrgpEngine::new(problem, inc_par_config);
    for k in 1..=iterations {
        if let Some((at, flow)) = removal {
            if k == at {
                baseline.remove_flow(FlowId::new(flow));
                inc_seq.remove_flow(FlowId::new(flow));
                inc_par.remove_flow(FlowId::new(flow));
            }
        }
        let u_base = baseline.step();
        let u_seq = inc_seq.step();
        let u_par = inc_par.step();
        assert!(
            u_base.to_bits() == u_seq.to_bits(),
            "incremental-sequential utility diverged at iteration {k}: {u_base:?} vs {u_seq:?}"
        );
        assert!(
            u_base.to_bits() == u_par.to_bits(),
            "incremental-threads utility diverged at iteration {k}: {u_base:?} vs {u_par:?}"
        );
        assert_same_state("incremental-sequential", k, &baseline, &inc_seq);
        assert_same_state("incremental-threads", k, &baseline, &inc_par);
    }
    assert_bits_eq(
        "incremental-sequential utility trace",
        iterations,
        baseline.trace().utility.values(),
        inc_seq.trace().utility.values(),
    );
    assert_bits_eq(
        "incremental-threads utility trace",
        iterations,
        baseline.trace().utility.values(),
        inc_par.trace().utility.values(),
    );
}

fn workload_strategy() -> impl Strategy<Value = (RandomWorkload, u64, usize)> {
    (
        2usize..24,   // flows
        1usize..8,    // consumer nodes
        1usize..5,    // classes per flow
        prop_oneof![
            Just(UtilityShape::Log),
            Just(UtilityShape::Pow25),
            Just(UtilityShape::Pow50),
            Just(UtilityShape::Pow75),
        ],
        0u64..1_000_000, // workload seed
        2usize..8,    // worker threads
    )
        .prop_map(|(flows, cnodes, classes, shape, seed, threads)| {
            let workload = RandomWorkload {
                flows,
                consumer_nodes: cnodes,
                classes_per_flow: classes,
                shape,
                ..RandomWorkload::default()
            };
            (workload, seed, threads)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The acceptance criterion: ≥ 100 randomized problems, bit-identical
    /// rates, admissions, prices, and utility traces at every iteration.
    #[test]
    fn parallel_engine_bit_identical_on_random_problems(
        (workload, seed, threads) in workload_strategy()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        assert_engines_identical(
            problem,
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            25,
        );
    }

    /// The incremental acceptance criterion: on the same randomized problem
    /// population, the dirty-set engine (sequential and threaded) is
    /// bit-identical to the full-recompute baseline at every iteration —
    /// including across a mid-run flow removal, which must invalidate the
    /// term tables and dirty sets.
    #[test]
    fn incremental_engine_bit_identical_on_random_problems(
        (workload, seed, threads) in workload_strategy()
    ) {
        let flows = workload.flows;
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = workload.generate(&mut rng);
        // Remove a seed-chosen flow before iteration 16 of 25, so every case
        // exercises both steady-state skipping and invalidation.
        let removal = Some((16, (seed % flows as u64) as u32));
        assert_incremental_identical(
            problem,
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            25,
            removal,
        );
    }
}

#[test]
fn parallel_engine_bit_identical_on_paper_workload() {
    // The Table 1 workload, long enough to pass through the initial
    // oscillation and the adaptive-γ regime changes.
    for threads in [2, 3, 4, 7] {
        assert_engines_identical(
            paper_workload(UtilityShape::Log, 1, 1),
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            120,
        );
    }
}

#[test]
fn parallel_engine_bit_identical_with_link_prices() {
    // RandomWorkload has no links; this workload makes the link-price phase
    // (Eq. 13) the binding constraint so its sharded path is exercised.
    assert_engines_identical(
        link_bottleneck_workload(500.0),
        LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() },
        Parallelism::Threads(2),
        200,
    );
}

#[test]
fn parallel_engine_bit_identical_under_auto() {
    // Auto may resolve to any worker count (including 1); identity must
    // hold regardless.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = RandomWorkload { flows: 64, consumer_nodes: 16, ..RandomWorkload::default() };
    let problem = workload.generate(&mut rng);
    assert_engines_identical(problem, LrgpConfig::default(), Parallelism::Auto, 40);
}

#[test]
fn parallel_engine_bit_identical_with_more_workers_than_elements() {
    // Degenerate sharding: more threads than flows/nodes must not change
    // results (each chunk holds at most one element).
    let mut rng = StdRng::seed_from_u64(11);
    let workload = RandomWorkload { flows: 3, consumer_nodes: 2, ..RandomWorkload::default() };
    let problem = workload.generate(&mut rng);
    assert_engines_identical(problem, LrgpConfig::default(), Parallelism::Threads(32), 30);
}

#[test]
fn parallel_engine_matches_through_flow_removal() {
    // Dynamics (Fig. 3): removing a flow mid-run must keep the engines in
    // lockstep afterwards too.
    let problem = paper_workload(UtilityShape::Log, 1, 1);
    let config = LrgpConfig { trace: TraceConfig::full(), ..LrgpConfig::default() };
    let mut sequential = LrgpEngine::new(problem.clone(), config);
    let mut parallel = ParallelLrgpEngine::with_threads(problem, config, 4);
    sequential.run(50);
    parallel.run(50);
    let flow = lrgp_model::FlowId::new(5);
    sequential.remove_flow(flow);
    parallel.engine_mut().remove_flow(flow);
    for k in 1..=50 {
        let u_seq = sequential.step();
        let u_par = parallel.step();
        assert!(
            u_seq.to_bits() == u_par.to_bits(),
            "utility diverged at post-removal iteration {k}: {u_seq:?} vs {u_par:?}"
        );
    }
}

#[test]
fn incremental_engine_bit_identical_on_paper_workload() {
    // Long enough to pass through the initial oscillation, the adaptive-γ
    // regime changes, and into the steady state where the dirty sets have
    // shrunk to the churning core — the regime the skipping logic exists
    // for.
    for threads in [2, 4] {
        assert_incremental_identical(
            paper_workload(UtilityShape::Log, 1, 1),
            LrgpConfig::default(),
            Parallelism::Threads(threads),
            300,
            None,
        );
    }
}

#[test]
fn incremental_engine_bit_identical_with_link_prices() {
    // RandomWorkload has no links; this workload drives the dirty-link
    // usage recomputation and the Eq. 13 change detection.
    assert_incremental_identical(
        link_bottleneck_workload(500.0),
        LrgpConfig { link_gamma: 2e-3, ..LrgpConfig::default() },
        Parallelism::Threads(2),
        200,
        Some((120, 0)),
    );
}

#[test]
fn incremental_engine_bit_identical_under_auto() {
    let mut rng = StdRng::seed_from_u64(7);
    let workload = RandomWorkload { flows: 64, consumer_nodes: 16, ..RandomWorkload::default() };
    let problem = workload.generate(&mut rng);
    assert_incremental_identical(problem, LrgpConfig::default(), Parallelism::Auto, 40, None);
}

#[test]
fn incremental_engine_matches_through_capacity_and_population_churn() {
    // Dynamics beyond flow removal: capacity and max-population edits go
    // through `replace_problem`, which must drop the incremental state so
    // the next step re-derives everything against the edited problem.
    let problem = paper_workload(UtilityShape::Log, 1, 1);
    let config = LrgpConfig { trace: TraceConfig::full(), ..LrgpConfig::default() };
    let inc_config = LrgpConfig { incremental: IncrementalMode::On, ..config };
    let mut baseline = LrgpEngine::new(problem.clone(), config);
    let mut incremental = LrgpEngine::new(problem, inc_config);
    let node = baseline.problem().node_ids().next().expect("workload has nodes");
    let class = baseline.problem().class_ids().next().expect("workload has classes");
    let changes: [(usize, ProblemChange); 3] = [
        (40, ProblemChange::SetNodeCapacity { node, capacity: 30_000.0 }),
        (80, ProblemChange::SetMaxPopulation { class, max_population: 10 }),
        (120, ProblemChange::SetNodeCapacity { node, capacity: 57_000.0 }),
    ];
    for k in 1..=160 {
        for (at, change) in &changes {
            if k == *at {
                let edited = change.apply(baseline.problem()).expect("change is valid");
                baseline.replace_problem(edited.clone());
                incremental.replace_problem(edited);
            }
        }
        let u_base = baseline.step();
        let u_inc = incremental.step();
        assert!(
            u_base.to_bits() == u_inc.to_bits(),
            "utility diverged at churn iteration {k}: {u_base:?} vs {u_inc:?}"
        );
        assert_same_state("churn", k, &baseline, &incremental);
    }
}
