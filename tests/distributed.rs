//! Integration tests of the distributed protocol against the centralized
//! engine, over randomized workloads and topologies.

use lrgp::{Engine, LrgpConfig};
use lrgp_model::workloads::{base_workload, RandomWorkload};
use lrgp_overlay::{
    run_asynchronous, run_synchronous, simulate_message_plane, AsyncConfig, LatencyModel,
    PlaneConfig, SimTime, Topology,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn uniform_topology(p: &lrgp_model::Problem) -> Topology {
    Topology::from_problem(
        p,
        LatencyModel::Uniform { latency: SimTime::from_millis(10) },
        SimTime::from_micros(200),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The synchronous distributed protocol produces the same utility trace
    /// as the centralized engine on any random workload.
    #[test]
    fn sync_protocol_equals_engine_on_random_workloads(
        flows in 1usize..4,
        nodes in 1usize..4,
        classes in 1usize..3,
        seed in any::<u64>(),
    ) {
        let cfg = RandomWorkload {
            flows,
            consumer_nodes: nodes,
            classes_per_flow: classes,
            ..RandomWorkload::default()
        };
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let topology = uniform_topology(&problem);
        let sync = run_synchronous(&problem, &topology, LrgpConfig::default(), 40);
        let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
        engine.run(40);
        prop_assert_eq!(sync.utility.len(), engine.trace().utility.len());
        for (a, b) in sync.utility.values().iter().zip(engine.trace().utility.values()) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// Enacting any mid-run engine allocation on the data plane keeps node
    /// utilization at or below capacity (within quantization noise).
    #[test]
    fn data_plane_respects_feasible_allocations(
        seed in any::<u64>(),
        iters in 5usize..60,
    ) {
        let cfg = RandomWorkload::default();
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let topology = uniform_topology(&problem);
        let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
        engine.run(iters);
        let allocation = engine.allocation();
        prop_assert!(allocation.is_feasible(&problem, 1e-6));
        let report = simulate_message_plane(&problem, &topology, &allocation, PlaneConfig {
            duration: SimTime::from_millis(500),
            ..PlaneConfig::default()
        });
        prop_assert!(!report.truncated);
        prop_assert!(
            report.peak_utilization() <= 1.10,
            "peak utilization {}",
            report.peak_utilization()
        );
    }
}

/// Async and sync agree on the paper's base workload across several seeds
/// and latency regimes.
#[test]
fn async_tracks_sync_across_latency_regimes() {
    let problem = base_workload();
    let reference = {
        let mut e = Engine::new(problem.clone(), LrgpConfig::default());
        e.run_until_converged(300).utility
    };
    for (min_ms, max_ms) in [(1, 5), (5, 40), (20, 80)] {
        let topology = Topology::from_problem(
            &problem,
            LatencyModel::RandomUniform {
                min: SimTime::from_millis(min_ms),
                max: SimTime::from_millis(max_ms),
                seed: 23,
            },
            SimTime::from_micros(200),
        );
        let out = run_asynchronous(
            &problem,
            &topology,
            AsyncConfig { duration: SimTime::from_secs(25), ..AsyncConfig::default() },
        );
        let rel = (out.final_utility - reference).abs() / reference;
        assert!(
            rel < 0.05,
            "latency {min_ms}-{max_ms}ms: async {} vs reference {reference}",
            out.final_utility
        );
    }
}

/// Message counts per synchronous round are structural: flows × reached
/// nodes rate updates plus the symmetric feedback.
#[test]
fn sync_message_count_is_structural() {
    let problem = base_workload();
    let topology = uniform_topology(&problem);
    let per_round: u64 = problem
        .flow_ids()
        .map(|f| problem.nodes_of_flow(f).len() as u64)
        .sum::<u64>()
        * 2;
    for rounds in [1usize, 7, 20] {
        let sync = run_synchronous(&problem, &topology, LrgpConfig::default(), rounds);
        assert_eq!(sync.messages, per_round * rounds as u64);
    }
}
