//! Property-based tests over randomized workloads: the optimizer must
//! uphold its invariants on *any* structurally valid problem, not just the
//! paper's.

use lrgp::{Engine, GammaMode, LrgpConfig};
use lrgp_anneal::{anneal, AnnealConfig, Move, SearchState};
use lrgp_model::workloads::RandomWorkload;
use lrgp_model::{Allocation, ClassId, FlowId, UtilityShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload_strategy() -> impl Strategy<Value = (RandomWorkload, u64)> {
    (
        1usize..5,          // flows
        1usize..4,          // consumer nodes
        1usize..4,          // classes per flow
        prop_oneof![
            Just(UtilityShape::Log),
            Just(UtilityShape::Pow25),
            Just(UtilityShape::Pow50),
            Just(UtilityShape::Pow75),
        ],
        1e4..1e7f64,        // node capacity
        any::<u64>(),       // seed
    )
        .prop_map(|(flows, nodes, classes, shape, capacity, seed)| {
            (
                RandomWorkload {
                    flows,
                    consumer_nodes: nodes,
                    classes_per_flow: classes,
                    shape,
                    node_capacity: capacity,
                    ..RandomWorkload::default()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every iteration of LRGP yields a feasible allocation with in-bound
    /// rates and populations, for any random workload and γ mode.
    #[test]
    fn lrgp_iterations_always_feasible((cfg, seed) in workload_strategy(), fixed in proptest::bool::ANY) {
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let gamma = if fixed { GammaMode::fixed(0.1) } else { GammaMode::adaptive() };
        let mut engine = Engine::new(problem.clone(), LrgpConfig { gamma, ..LrgpConfig::default() });
        for _ in 0..40 {
            engine.step();
            let a = engine.allocation();
            let report = a.check_feasibility(&problem, 1e-6);
            prop_assert!(report.is_feasible(), "iteration {}: {report}", engine.iteration());
            for f in problem.flow_ids() {
                prop_assert!(problem.flow(f).bounds.contains(a.rate(f), 1e-9));
            }
            for c in problem.class_ids() {
                let n = a.population(c);
                prop_assert!(n >= 0.0 && n <= problem.class(c).max_population as f64);
                prop_assert_eq!(n.fract(), 0.0, "integral mode must stay integral");
            }
        }
    }

    /// Utility is monotone in node capacity: doubling every capacity never
    /// reduces the converged utility (more resources, superset of feasible
    /// allocations).
    #[test]
    fn utility_monotone_in_capacity((cfg, seed) in workload_strategy()) {
        let small = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let big_cfg = RandomWorkload { node_capacity: cfg.node_capacity * 2.0, ..cfg };
        let big = big_cfg.generate(&mut StdRng::seed_from_u64(seed));
        let run = |p: &lrgp_model::Problem| {
            let mut e = Engine::new(p.clone(), LrgpConfig::default());
            e.run_until_converged(300).utility
        };
        let u_small = run(&small);
        let u_big = run(&big);
        // Allow tiny slack: the heuristic need not be exactly monotone, but
        // a regression beyond 2 % signals a real bug.
        prop_assert!(u_big >= u_small * 0.98, "2x capacity: {u_small} -> {u_big}");
    }

    /// The annealing baseline returns a feasible, integral allocation no
    /// worse than its feasible starting point.
    #[test]
    fn sa_outcome_feasible_and_non_negative((cfg, seed) in workload_strategy()) {
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let out = anneal(&problem, &AnnealConfig::paper(10.0, 30_000, seed));
        prop_assert!(out.best.is_feasible(&problem, 1e-6));
        prop_assert!(out.best.populations_are_integral());
        prop_assert!(out.best_utility >= 0.0);
        prop_assert!((out.best.total_utility(&problem) - out.best_utility).abs() < 1e-6);
    }

    /// The incremental search state's caches agree with a from-scratch
    /// recomputation after an arbitrary accepted-move walk.
    #[test]
    fn search_state_caches_exact((cfg, seed) in workload_strategy()) {
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let mut state = SearchState::lower_bounds(&problem);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        for _ in 0..300 {
            let mv = if rng.gen_bool(0.5) && problem.num_flows() > 0 {
                let flow = FlowId::new(rng.gen_range(0..problem.num_flows() as u32));
                let b = problem.flow(flow).bounds;
                Move::SetRate { flow, rate: rng.gen_range(b.min..=b.max) }
            } else {
                let class = ClassId::new(rng.gen_range(0..problem.num_classes() as u32));
                let max = problem.class(class).max_population as f64;
                Move::SetPopulation { class, population: rng.gen_range(0.0..=max).floor() }
            };
            if state.evaluate(mv).is_some() {
                state.apply(mv);
            }
        }
        let drift = state.clone().rebuild_caches();
        prop_assert!(drift < 1e-5, "cache drift {drift}");
        prop_assert!(state.to_allocation().is_feasible(&problem, 1e-5));
    }

    /// Total utility evaluation is linear in populations: scaling every
    /// population by k scales utility by k (rates fixed).
    #[test]
    fn utility_linear_in_populations((cfg, seed) in workload_strategy(), k in 1u32..5) {
        let problem = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let mut base = Allocation::lower_bounds(&problem);
        let mut rng = StdRng::seed_from_u64(seed);
        for c in problem.class_ids() {
            let max = problem.class(c).max_population / k.max(1);
            if max > 0 {
                base.set_population(c, rng.gen_range(0..=max) as f64);
            }
        }
        let mut scaled = base.clone();
        for c in problem.class_ids() {
            scaled.set_population(c, base.population(c) * k as f64);
        }
        let u1 = base.total_utility(&problem);
        let uk = scaled.total_utility(&problem);
        prop_assert!((uk - k as f64 * u1).abs() <= 1e-9 * uk.abs().max(1.0));
    }
}
