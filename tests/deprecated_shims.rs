//! The deprecated pre-0.2 names must keep compiling and keep producing the
//! same answers as the unified engine for one release. This file is the
//! only place allowed to use them.

#![allow(deprecated)]

use lrgp::{Engine, LrgpConfig, LrgpEngine, ParallelLrgpEngine};
use lrgp_model::workloads::base_workload;
use lrgp_model::FlowId;

#[test]
fn lrgp_engine_alias_is_the_engine() {
    let mut old = LrgpEngine::new(base_workload(), LrgpConfig::default());
    let mut new = Engine::new(base_workload(), LrgpConfig::default());
    old.run(120);
    new.run(120);
    assert_eq!(old.total_utility().to_bits(), new.total_utility().to_bits());
}

#[test]
fn parallel_wrapper_matches_engine_with_threads_config() {
    let config = LrgpConfig::default();
    let mut wrapper = ParallelLrgpEngine::with_threads(base_workload(), config, 3);
    let mut direct = Engine::new(
        base_workload(),
        LrgpConfig { parallelism: lrgp::Parallelism::Threads(3), ..config },
    );
    wrapper.run(80);
    direct.run(80);
    assert_eq!(wrapper.total_utility().to_bits(), direct.total_utility().to_bits());
    assert_eq!(wrapper.engine().iteration(), direct.iteration());
    // The wrapper unwraps to a plain engine mid-flight.
    let inner: Engine = wrapper.into_inner();
    assert_eq!(inner.total_utility().to_bits(), direct.total_utility().to_bits());
}

#[test]
fn old_module_paths_still_resolve() {
    // Re-exports under the pre-kernel module layout.
    use lrgp::admission::{AdmissionPolicy, PopulationMode};
    use lrgp::incremental::IncrementalMode;
    use lrgp::parallel::Parallelism;
    use lrgp::prices::PriceVector;
    use lrgp::rate::{solve_rate, AggregateUtility};
    use lrgp_model::{RateBounds, Utility};

    let _ = (AdmissionPolicy::StopAtFirstBlock, PopulationMode::Integral);
    let _ = (IncrementalMode::Off, Parallelism::Sequential);
    let _ = PriceVector::zeros(&base_workload());
    let agg = AggregateUtility::from_terms([(100.0, Utility::log(10.0))]);
    let r = solve_rate(&agg, 0.5, RateBounds::new(10.0, 1000.0).unwrap(), 10.0);
    assert!(r >= 10.0);
}

#[test]
fn deprecated_remove_flow_matches_apply_delta() {
    let mut via_deprecated = Engine::new(base_workload(), LrgpConfig::default());
    let mut via_delta = Engine::new(base_workload(), LrgpConfig::default());
    via_deprecated.run(60);
    via_delta.run(60);
    via_deprecated.remove_flow(FlowId::new(5));
    via_delta
        .apply_delta(&lrgp_model::ProblemDelta::new().remove_flow(FlowId::new(5)))
        .unwrap();
    via_deprecated.run(60);
    via_delta.run(60);
    assert_eq!(via_deprecated.total_utility().to_bits(), via_delta.total_utility().to_bits());
}
