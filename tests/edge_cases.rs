//! Edge-case integration tests: degenerate problems the optimizer must
//! handle gracefully.

use lrgp::{Engine, GammaMode, LrgpConfig};
use lrgp_anneal::{anneal, AnnealConfig};
use lrgp_model::{Problem, ProblemBuilder, RateBounds, Utility};

fn single(class_max: u32, bounds: RateBounds, capacity: f64) -> Problem {
    let mut b = ProblemBuilder::new();
    let src = b.add_node(1e12);
    let sink = b.add_node(capacity);
    let f = b.add_flow(src, bounds);
    b.set_node_cost(f, sink, 3.0);
    b.add_class(f, sink, class_max, Utility::log(10.0), 19.0);
    b.build().unwrap()
}

#[test]
fn zero_demand_everywhere_is_stable_at_zero_utility() {
    let p = single(0, RateBounds::new(10.0, 1000.0).unwrap(), 9e5);
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    let out = e.run_until_converged(100);
    assert_eq!(out.utility, 0.0);
    assert!(e.allocation().is_feasible(&p, 1e-9));
    // SA agrees.
    let sa = anneal(&p, &AnnealConfig::paper(5.0, 10_000, 1));
    assert_eq!(sa.best_utility, 0.0);
}

#[test]
fn pinned_rate_bounds_still_admit() {
    // r_min == r_max: no rate freedom, pure admission control.
    let p = single(100, RateBounds::new(50.0, 50.0).unwrap(), 9e5);
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    let out = e.run_until_converged(200);
    let a = e.allocation();
    assert_eq!(a.rate(lrgp_model::FlowId::new(0)), 50.0);
    // Capacity 9e5 − flow cost 150 fits floor(899850/950) = 947 ≥ 100.
    assert_eq!(a.population(lrgp_model::ClassId::new(0)), 100.0);
    assert!(out.utility > 0.0);
}

#[test]
fn capacity_too_small_for_even_one_consumer() {
    // Flow cost alone ≈ fits, but one consumer at minimum rate exceeds the
    // budget: everyone must stay unadmitted, with no panic or violation.
    let p = single(10, RateBounds::new(10.0, 10.0).unwrap(), 40.0);
    // flow cost = 3·10 = 30 ≤ 40; consumer cost 19·10 = 190 > 10 remaining.
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    e.run(50);
    let a = e.allocation();
    assert_eq!(a.population(lrgp_model::ClassId::new(0)), 0.0);
    assert!(a.is_feasible(&p, 1e-9));
    assert_eq!(e.total_utility(), 0.0);
}

#[test]
fn flow_costs_exceeding_capacity_drive_price_up_not_panic() {
    // Even the minimum rate overloads the node (F·r_min > c_b): the
    // allocation is structurally infeasible, the price grows, and the
    // engine keeps running without panicking.
    let p = single(10, RateBounds::new(100.0, 1000.0).unwrap(), 100.0);
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    e.run(100);
    // Rate pinned at minimum by the huge price.
    assert_eq!(e.allocation().rate(lrgp_model::FlowId::new(0)), 100.0);
    assert!(e.prices().node(lrgp_model::NodeId::new(1)) > 0.0);
}

#[test]
fn single_consumer_single_message() {
    let p = single(1, RateBounds::new(1.0, 1.0).unwrap(), 1e3);
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    let out = e.run_until_converged(100);
    assert!((out.utility - 10.0 * 2.0f64.ln()).abs() < 1e-9);
}

#[test]
fn many_identical_classes_tie_break_deterministically() {
    // 8 identical classes: greedy order must be deterministic (class id
    // tie-break), so repeated runs agree exactly.
    let mut b = ProblemBuilder::new();
    let src = b.add_node(1e12);
    let sink = b.add_node(5e4);
    let f = b.add_flow(src, RateBounds::new(10.0, 100.0).unwrap());
    b.set_node_cost(f, sink, 3.0);
    for _ in 0..8 {
        b.add_class(f, sink, 50, Utility::log(10.0), 19.0);
    }
    let p = b.build().unwrap();
    let run = || {
        let mut e = Engine::new(p.clone(), LrgpConfig::default());
        e.run(100);
        e.allocation()
    };
    let a = run();
    let b2 = run();
    assert_eq!(a, b2);
    assert!(a.is_feasible(&p, 1e-9));
}

#[test]
fn saturating_utility_flows_back_off_naturally() {
    // A saturating utility has bounded value; with a characteristic scale
    // far below r_max the optimizer should not bother pushing the rate up.
    let mut b = ProblemBuilder::new();
    let src = b.add_node(1e12);
    let sink = b.add_node(9e5);
    let f = b.add_flow(src, RateBounds::new(1.0, 1000.0).unwrap());
    b.set_node_cost(f, sink, 3.0);
    b.add_class(f, sink, 100, Utility::saturating(50.0, 20.0), 19.0);
    let p = b.build().unwrap();
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    e.run_until_converged(500);
    let r = e.allocation().rate(lrgp_model::FlowId::new(0));
    assert!(r < 500.0, "saturating utility should not chase r_max, got {r}");
    assert!(e.total_utility() > 0.0);
}

#[test]
fn undamped_gamma_on_degenerate_problem_stays_finite() {
    let p = single(100, RateBounds::new(10.0, 1000.0).unwrap(), 9e5);
    let cfg = LrgpConfig { gamma: GammaMode::fixed(1.0), ..LrgpConfig::default() };
    let mut e = Engine::new(p, cfg);
    for _ in 0..500 {
        let u = e.step();
        assert!(u.is_finite());
        assert!(e.prices().node_prices().iter().all(|p| p.is_finite()));
    }
}

#[test]
fn removing_every_flow_leaves_an_empty_but_valid_system() {
    let p = lrgp_model::workloads::base_workload();
    let mut e = Engine::new(p, LrgpConfig::default());
    e.run(50);
    for f in 0..6 {
        e.apply_delta(&lrgp_model::ProblemDelta::new().remove_flow(lrgp_model::FlowId::new(f)))
            .unwrap();
    }
    e.run(50);
    assert_eq!(e.total_utility(), 0.0);
    assert!(e.allocation().rates().iter().all(|&r| r == 0.0));
    assert!(e.allocation().is_feasible(e.problem(), 1e-9));
}
