//! Optimality validation on tiny instances where exhaustive enumeration is
//! the ground truth — the oracle the paper could not run on its full
//! workloads (§4.4).

use lrgp::{Engine, LrgpConfig, PopulationMode};
use lrgp_anneal::{anneal, exhaustive_search, exhaustive_search_exact_rates, AnnealConfig};
use lrgp_model::{Problem, ProblemBuilder, RateBounds, Utility};

/// One flow, one node, two classes competing for a tight budget.
fn tiny_two_class() -> Problem {
    let mut b = ProblemBuilder::new();
    let src = b.add_node(1e12);
    let sink = b.add_node(2_000.0);
    let f = b.add_flow(src, RateBounds::new(5.0, 50.0).unwrap());
    b.set_node_cost(f, sink, 2.0);
    b.add_class(f, sink, 6, Utility::log(10.0), 8.0);
    b.add_class(f, sink, 10, Utility::log(3.0), 4.0);
    b.build().unwrap()
}

/// Two flows sharing one node.
fn tiny_two_flow() -> Problem {
    let mut b = ProblemBuilder::new();
    let s0 = b.add_node(1e12);
    let s1 = b.add_node(1e12);
    let sink = b.add_node(3_000.0);
    let f0 = b.add_flow(s0, RateBounds::new(5.0, 60.0).unwrap());
    let f1 = b.add_flow(s1, RateBounds::new(5.0, 60.0).unwrap());
    b.set_node_cost(f0, sink, 1.0);
    b.set_node_cost(f1, sink, 1.0);
    b.add_class(f0, sink, 8, Utility::log(12.0), 6.0);
    b.add_class(f1, sink, 8, Utility::log(5.0), 6.0);
    b.build().unwrap()
}

/// The true global optimum: populations enumerated exhaustively, rates
/// solved exactly per population vector (convex subproblem).
fn exhaustive_optimum(p: &Problem) -> f64 {
    exhaustive_search_exact_rates(p, 50_000_000).expect("tiny instance").best_utility
}

#[test]
fn lrgp_within_a_few_percent_of_exhaustive_on_tiny_two_class() {
    let p = tiny_two_class();
    let optimum = exhaustive_optimum(&p);
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    let out = e.run_until_converged(2_000);
    assert!(out.utility <= optimum * (1.0 + 1e-9), "LRGP cannot exceed the optimum");
    assert!(
        out.utility >= 0.93 * optimum,
        "LRGP {} vs exhaustive optimum {optimum}",
        out.utility
    );
    assert!(e.allocation().is_feasible(&p, 1e-6));
}

#[test]
fn lrgp_within_a_few_percent_of_exhaustive_on_tiny_two_flow() {
    let p = tiny_two_flow();
    let optimum = exhaustive_optimum(&p);
    let mut e = Engine::new(p.clone(), LrgpConfig::default());
    let out = e.run_until_converged(2_000);
    assert!(out.utility <= optimum * (1.0 + 1e-9));
    assert!(
        out.utility >= 0.93 * optimum,
        "LRGP {} vs exhaustive optimum {optimum}",
        out.utility
    );
}

#[test]
fn sa_approaches_exhaustive_on_tiny_instances() {
    for p in [tiny_two_class(), tiny_two_flow()] {
        let optimum = exhaustive_optimum(&p);
        let sa = anneal(&p, &AnnealConfig::paper(10.0, 500_000, 3));
        assert!(sa.best_utility <= optimum * (1.0 + 1e-9));
        assert!(
            sa.best_utility >= 0.95 * optimum,
            "SA {} vs exhaustive optimum {optimum}",
            sa.best_utility
        );
    }
}

#[test]
fn fractional_relaxation_dominates_integral_greedy() {
    // On the same dynamics, fractional admission can only add utility at
    // each node step, so the converged utility should not be (meaningfully)
    // lower.
    let p = tiny_two_class();
    let integral = {
        let mut e = Engine::new(p.clone(), LrgpConfig::default());
        e.run_until_converged(2_000).utility
    };
    let fractional = {
        let cfg = LrgpConfig {
            population_mode: PopulationMode::Fractional,
            ..LrgpConfig::default()
        };
        let mut e = Engine::new(p.clone(), cfg);
        e.run_until_converged(2_000).utility
    };
    assert!(
        fractional >= integral * 0.999,
        "fractional {fractional} vs integral {integral}"
    );
}

#[test]
fn exhaustive_oracle_agrees_with_itself_on_grid_refinement() {
    // Refining the rate grid can only improve (or keep) the optimum.
    let p = tiny_two_class();
    let coarse = exhaustive_search(&p, 7, 50_000_000).unwrap().best_utility;
    let fine = exhaustive_search(&p, 31, 50_000_000).unwrap().best_utility;
    assert!(fine >= coarse - 1e-9);
}
