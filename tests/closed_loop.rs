//! Closed-loop validation across the whole stack: the pub/sub matching
//! substrate calibrates the cost model, LRGP optimizes against it, and the
//! resulting allocation's predicted broker load agrees with the load
//! measured by actually matching messages.

use lrgp::{Engine, LrgpConfig};
use lrgp_pubsub::calibrate::{calibrate, problem_from_calibration, CalibrationConfig};
use lrgp_pubsub::filter::FilterGen;
use lrgp_pubsub::matcher::{Matcher, NaiveMatcher};
use lrgp_pubsub::message::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn naive_from(filters: Vec<lrgp_pubsub::Filter>) -> NaiveMatcher {
    let mut m = NaiveMatcher::new();
    for f in filters {
        m.subscribe(f);
    }
    m
}

/// Measure → model → optimize → re-measure. The optimizer's predicted node
/// usage must agree with the work observed when the allocated number of
/// consumers actually match the allocated message rate.
#[test]
fn calibrated_model_predicts_measured_broker_load() {
    let schema = Arc::new(Schema::trade_data());
    let cal_cfg = CalibrationConfig::default();
    let estimate = calibrate(&schema, naive_from, &cal_cfg);
    assert!(estimate.r_squared > 0.99, "calibration fit r² = {}", estimate.r_squared);

    // One flow, one class, capacity chosen so admission control must bite.
    let capacity = 2e5;
    let problem = problem_from_calibration(&estimate, 1, 1, 20_000, capacity, (10.0, 500.0))
        .expect("calibrated problem");
    let mut engine = Engine::new(problem.clone(), LrgpConfig::default());
    engine.run_until_converged(400);
    let allocation = engine.allocation();
    let class = lrgp_model::ClassId::new(0);
    let flow = lrgp_model::FlowId::new(0);
    let consumers = allocation.population(class) as usize;
    let rate = allocation.rate(flow);
    assert!(consumers > 0, "optimizer admitted nobody");
    assert!((1..20_000).contains(&consumers), "admission control should bite: {consumers}");

    // Re-measure: build a broker with exactly `consumers` subscriptions and
    // match one simulated second of traffic at the allocated rate.
    let mut rng = StdRng::seed_from_u64(777);
    let filters: Vec<_> =
        (0..consumers).map(|_| FilterGen::default().generate(&schema, &mut rng)).collect();
    let broker = naive_from(filters);
    let messages = rate.round() as usize;
    let mut measured_work = 0u64;
    for _ in 0..messages {
        let m = schema.generate(&mut rng);
        measured_work += broker.match_message(&m).work;
    }
    let measured = measured_work as f64 + cal_cfg.routing_overhead * messages as f64;

    // The model predicts node usage F·r + G·n·r for one second of traffic.
    let predicted = allocation.node_usage(&problem, lrgp_model::NodeId::new(0));
    let rel = (measured - predicted).abs() / predicted;
    assert!(
        rel < 0.10,
        "measured broker load {measured:.0} vs model prediction {predicted:.0} (rel {rel:.3})"
    );
    // And the broker stays within its provisioned capacity.
    assert!(measured <= capacity * 1.1, "measured {measured} vs capacity {capacity}");
}

/// The same loop with the index matcher: a cheaper engine must admit at
/// least as many consumers at equal capacity.
#[test]
fn faster_matcher_admits_no_fewer_consumers() {
    let schema = Arc::new(Schema::trade_data());
    let cfg = CalibrationConfig::default();
    let naive_est = calibrate(&schema, naive_from, &cfg);
    let index_est = calibrate(
        &schema,
        lrgp_pubsub::matcher::IndexMatcher::from_filters,
        &cfg,
    );
    let admitted = |est: &lrgp_pubsub::CostEstimate| {
        let p = problem_from_calibration(est, 2, 2, 3_000, 3e5, (10.0, 500.0)).unwrap();
        let mut e = Engine::new(p, LrgpConfig::default());
        e.run_until_converged(400);
        e.allocation().populations().iter().sum::<f64>()
    };
    let naive_admitted = admitted(&naive_est);
    let index_admitted = admitted(&index_est);
    assert!(
        index_admitted >= naive_admitted * 0.99,
        "index {index_admitted} vs naive {naive_admitted}"
    );
}
