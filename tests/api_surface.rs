//! Public-API snapshot: the `pub` surface of `lrgp` and `lrgp-model` is
//! pinned in `tests/api_surface.txt`. An unreviewed rename, removal, or
//! addition fails this test (and CI's lint job) with a diff; intentional
//! changes regenerate the snapshot with
//! `UPDATE_API_SURFACE=1 cargo test -p lrgp-repro --test api_surface`.
//!
//! The scan is deliberately textual (first line of every `pub` item,
//! whitespace-normalized, sorted) — it needs no nightly rustdoc JSON and is
//! stable under reformatting, while still catching every signature-shaping
//! edit on the line that declares the item.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = "tests/api_surface.txt";
const ROOTS: [&str; 2] = ["crates/core/src", "crates/model/src"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).expect("readable source dir");
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `true` for lines that declare part of the public API.
fn is_public_item(line: &str) -> bool {
    const KINDS: [&str; 9] = [
        "pub fn ", "pub struct ", "pub enum ", "pub trait ", "pub type ", "pub const ",
        "pub static ", "pub mod ", "pub use ",
    ];
    KINDS.iter().any(|k| line.starts_with(k))
}

/// Normalizes a declaration line: collapse whitespace, drop the trailing
/// body/terminator so brace style does not matter.
fn normalize(line: &str) -> String {
    let collapsed = line.split_whitespace().collect::<Vec<_>>().join(" ");
    collapsed
        .trim_end_matches(['{', ';', ' '])
        .trim_end_matches("where")
        .trim_end()
        .to_string()
}

fn scan() -> String {
    let root = repo_root();
    let mut files = Vec::new();
    for r in ROOTS {
        rust_files(&root.join(r), &mut files);
    }
    files.sort();
    let mut lines = Vec::new();
    for file in &files {
        let label = file.strip_prefix(&root).expect("file under root").display().to_string();
        let src = fs::read_to_string(file).expect("readable source file");
        let mut depth = 0usize;
        let mut test_mod_at = usize::MAX;
        for raw in src.lines() {
            let line = raw.trim_start();
            // Track brace depth so `pub` items inside `#[cfg(test)] mod`
            // bodies (test helpers) are excluded from the surface.
            if depth < test_mod_at && line.starts_with("#[cfg(test)]") {
                test_mod_at = depth;
            }
            let in_tests = test_mod_at != usize::MAX && depth > test_mod_at;
            let opens = raw.matches('{').count();
            let closes = raw.matches('}').count();
            if !in_tests
                && test_mod_at != usize::MAX
                && depth == test_mod_at
                && opens == 0
                && line.starts_with("mod ")
            {
                // `#[cfg(test)]` on `mod tests;` (out-of-line) — rare; the
                // marker resets once the declaration passes.
                test_mod_at = usize::MAX;
            }
            if !in_tests && depth == 0 && is_public_item(line) {
                lines.push(format!("{label}: {}", normalize(line)));
            } else if !in_tests && is_public_item(line) && !line.starts_with("pub use ") {
                // Nested public items (methods in inherent impls, enum
                // variants are not `pub`-prefixed so only methods land
                // here).
                lines.push(format!("{label}: {}", normalize(line)));
            }
            depth += opens;
            depth = depth.saturating_sub(closes);
            if test_mod_at != usize::MAX && depth <= test_mod_at && closes > opens {
                test_mod_at = usize::MAX;
            }
        }
    }
    lines.sort();
    lines.dedup();
    let mut out = String::with_capacity(lines.len() * 64);
    for l in &lines {
        writeln!(out, "{l}").expect("write to string");
    }
    out
}

#[test]
fn public_api_matches_snapshot() {
    let actual = scan();
    let snapshot_path = repo_root().join(SNAPSHOT);
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        fs::write(&snapshot_path, &actual).expect("write snapshot");
        eprintln!("api_surface: snapshot regenerated ({} lines)", actual.lines().count());
        return;
    }
    let expected = fs::read_to_string(&snapshot_path)
        .expect("tests/api_surface.txt exists; regenerate with UPDATE_API_SURFACE=1");
    if expected == actual {
        return;
    }
    let expected_set: std::collections::BTreeSet<&str> = expected.lines().collect();
    let actual_set: std::collections::BTreeSet<&str> = actual.lines().collect();
    let removed: Vec<&&str> = expected_set.difference(&actual_set).collect();
    let added: Vec<&&str> = actual_set.difference(&expected_set).collect();
    panic!(
        "public API surface changed.\n\nremoved ({}):\n{}\n\nadded ({}):\n{}\n\n\
         If intentional, regenerate: UPDATE_API_SURFACE=1 cargo test -p lrgp-repro \
         --test api_surface",
        removed.len(),
        removed.iter().map(|s| format!("  - {s}")).collect::<Vec<_>>().join("\n"),
        added.len(),
        added.iter().map(|s| format!("  + {s}")).collect::<Vec<_>>().join("\n"),
    );
}
